// SlabGraph — the paper's dynamic graph data structure (§III-IV).
//
// One hash table per vertex stores that vertex's adjacency list; a vertex
// dictionary maps ids to tables. Two variants are provided, mirroring the
// paper's map/set split:
//
//   DynGraphMap — SlabHash concurrent map (Bc = 15): per-edge values.
//   DynGraphSet — SlabHash concurrent set (Bc = 30): destinations only.
//
// Batched mutations run as SIMT grid launches in the Warp Cooperative Work
// Sharing style: insert_edges is Algorithm 1 verbatim (ballot work queue,
// ffs election, shuffle broadcast, same-source grouping, popc success
// counting); delete_vertices is Algorithm 2 (atomic work-queue counter, one
// warp per vertex, slab-granular neighbour cleanup, dynamic-slab reclaim).
//
// The structure is phase-concurrent (§II-A): mutation batches and query
// batches never overlap, but everything *within* a batch runs concurrently.
// The synchronous API leaves that contract to the caller; the scheduled
// API (submit_insert / submit_erase / submit_edges_exist /
// submit_edge_weights, GraphConfig::phase_scheduler) enforces it through a
// per-graph phase scheduler — see src/core/phase_scheduler.hpp and
// docs/ARCHITECTURE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/errors.hpp"
#include "src/core/phase_scheduler.hpp"
#include "src/core/types.hpp"
#include "src/core/vertex_dictionary.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/slabhash/slab_set.hpp"

namespace sg::persist {
class Journal;  // write-ahead batch journal (src/persist/journal.hpp)
}  // namespace sg::persist

namespace sg::core {

/// Adjacency policy: concurrent-map tables (value = edge weight).
struct MapPolicy {
  static constexpr int kSlotCapacity = slabhash::kMapPairsPerSlab;
  static constexpr bool kHasValues = true;

  static bool insert(memory::SlabArena& arena, slabhash::TableRef t,
                     VertexId dst, Weight w, std::uint64_t seed,
                     std::uint32_t alloc_seed) {
    return slabhash::map_replace(arena, t, dst, w, seed, alloc_seed);
  }
  static bool erase(memory::SlabArena& arena, slabhash::TableRef t, VertexId dst,
                    std::uint64_t seed) {
    return slabhash::map_erase(arena, t, dst, seed);
  }
  static bool contains(const memory::SlabArena& arena, slabhash::TableRef t,
                       VertexId dst, std::uint64_t seed) {
    return slabhash::map_search(arena, t, dst, seed).found;
  }
  static void for_each(const memory::SlabArena& arena, slabhash::TableRef t,
                       const std::function<void(VertexId, Weight)>& fn) {
    slabhash::map_for_each(arena, t, fn);
  }
  static slabhash::TableOccupancy occupancy(const memory::SlabArena& arena,
                                            slabhash::TableRef t) {
    return slabhash::map_occupancy(arena, t);
  }
  static void clear(memory::SlabArena& arena, slabhash::TableRef t) {
    slabhash::map_clear(arena, t);
  }
  static void flush_tombstones(memory::SlabArena& arena, slabhash::TableRef t) {
    slabhash::map_flush_tombstones(arena, t);
  }
  /// Key stored at slot `i` of a slab (layout-aware; for the iterator).
  /// Racy by design: Algorithm 2's lanes iterate while peer warps CAS
  /// tombstones into the same slabs.
  static std::uint32_t slot_key(const memory::Slab& slab, int i) {
    return simt::racy_load(slab.words[i * 2]);
  }

  // ---- staged-run hooks (batch engine) --------------------------------
  static std::uint32_t bulk_insert(memory::SlabArena& arena,
                                   slabhash::TableRef t, std::uint32_t bucket,
                                   const std::uint32_t* keys,
                                   const std::uint32_t* values,
                                   std::uint32_t count,
                                   std::uint32_t alloc_seed,
                                   std::uint32_t* chain_slabs,
                                   slabhash::BulkStatus* status) {
    return slabhash::map_bulk_replace(arena, t, bucket, keys, values, count,
                                      alloc_seed, chain_slabs, status);
  }
  static std::uint32_t bulk_erase(memory::SlabArena& arena,
                                  slabhash::TableRef t, std::uint32_t bucket,
                                  const std::uint32_t* keys,
                                  std::uint32_t count,
                                  std::uint32_t* chain_slabs) {
    return slabhash::map_bulk_erase(arena, t, bucket, keys, count, chain_slabs);
  }
  static void bulk_contains(const memory::SlabArena& arena,
                            slabhash::TableRef t, std::uint32_t bucket,
                            const std::uint32_t* keys, std::uint32_t count,
                            std::uint8_t* found, std::uint32_t* chain_slabs) {
    slabhash::map_bulk_search(arena, t, bucket, keys, count, found, nullptr,
                              chain_slabs);
  }
  /// Like bulk_contains but also gathers the stored values — the batched
  /// weighted-lookup hook behind DynGraph::edge_weights.
  static void bulk_search_values(const memory::SlabArena& arena,
                                 slabhash::TableRef t, std::uint32_t bucket,
                                 const std::uint32_t* keys, std::uint32_t count,
                                 std::uint8_t* found, std::uint32_t* values,
                                 std::uint32_t* chain_slabs) {
    slabhash::map_bulk_search(arena, t, bucket, keys, count, found, values,
                              chain_slabs);
  }
  /// Full-adjacency extraction (keys only) — the analytics gather hook.
  static std::uint32_t gather(const memory::SlabArena& arena,
                              slabhash::TableRef t, std::uint32_t* out,
                              std::uint32_t cap, std::uint32_t* chain_slabs) {
    return slabhash::map_gather(arena, t, out, cap, chain_slabs);
  }
};

/// Adjacency policy: concurrent-set tables (no values; Bc = 30).
struct SetPolicy {
  static constexpr int kSlotCapacity = slabhash::kSetKeysPerSlab;
  static constexpr bool kHasValues = false;

  static bool insert(memory::SlabArena& arena, slabhash::TableRef t,
                     VertexId dst, Weight /*w*/, std::uint64_t seed,
                     std::uint32_t alloc_seed) {
    return slabhash::set_insert(arena, t, dst, seed, alloc_seed);
  }
  static bool erase(memory::SlabArena& arena, slabhash::TableRef t, VertexId dst,
                    std::uint64_t seed) {
    return slabhash::set_erase(arena, t, dst, seed);
  }
  static bool contains(const memory::SlabArena& arena, slabhash::TableRef t,
                       VertexId dst, std::uint64_t seed) {
    return slabhash::set_contains(arena, t, dst, seed);
  }
  static void for_each(const memory::SlabArena& arena, slabhash::TableRef t,
                       const std::function<void(VertexId, Weight)>& fn) {
    slabhash::set_for_each(arena, t,
                           [&fn](std::uint32_t key) { fn(key, Weight{0}); });
  }
  static slabhash::TableOccupancy occupancy(const memory::SlabArena& arena,
                                            slabhash::TableRef t) {
    return slabhash::set_occupancy(arena, t);
  }
  static void clear(memory::SlabArena& arena, slabhash::TableRef t) {
    slabhash::set_clear(arena, t);
  }
  static void flush_tombstones(memory::SlabArena& arena, slabhash::TableRef t) {
    slabhash::set_flush_tombstones(arena, t);
  }
  static std::uint32_t slot_key(const memory::Slab& slab, int i) {
    return simt::racy_load(slab.words[i]);
  }

  // ---- staged-run hooks (batch engine) --------------------------------
  static std::uint32_t bulk_insert(memory::SlabArena& arena,
                                   slabhash::TableRef t, std::uint32_t bucket,
                                   const std::uint32_t* keys,
                                   const std::uint32_t* /*values*/,
                                   std::uint32_t count,
                                   std::uint32_t alloc_seed,
                                   std::uint32_t* chain_slabs,
                                   slabhash::BulkStatus* status) {
    return slabhash::set_bulk_insert(arena, t, bucket, keys, count, alloc_seed,
                                     chain_slabs, status);
  }
  static std::uint32_t bulk_erase(memory::SlabArena& arena,
                                  slabhash::TableRef t, std::uint32_t bucket,
                                  const std::uint32_t* keys,
                                  std::uint32_t count,
                                  std::uint32_t* chain_slabs) {
    return slabhash::set_bulk_erase(arena, t, bucket, keys, count, chain_slabs);
  }
  static void bulk_contains(const memory::SlabArena& arena,
                            slabhash::TableRef t, std::uint32_t bucket,
                            const std::uint32_t* keys, std::uint32_t count,
                            std::uint8_t* found, std::uint32_t* chain_slabs) {
    slabhash::set_bulk_contains(arena, t, bucket, keys, count, found,
                                chain_slabs);
  }
  /// Full-adjacency extraction — the analytics gather hook.
  static std::uint32_t gather(const memory::SlabArena& arena,
                              slabhash::TableRef t, std::uint32_t* out,
                              std::uint32_t cap, std::uint32_t* chain_slabs) {
    return slabhash::set_gather(arena, t, out, cap, chain_slabs);
  }
};

/// Output of DynGraph::gather_neighbors: one presized buffer holding every
/// requested vertex's live adjacency in disjoint slices, addressable by
/// input position (the PR 4 count → prefix-sum → emit layout — zero driver
/// copy). `offsets` has vertices.size() + 1 entries; slice i is unsorted.
struct GatherResult {
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbors;

  std::span<const VertexId> neighbors_of(std::size_t i) const {
    return {neighbors.data() + offsets[i],
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
  }
  /// Mutable view, for consumers that sort slices in place (static TC).
  std::span<VertexId> mutable_neighbors_of(std::size_t i) {
    return {neighbors.data() + offsets[i],
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])};
  }
};

/// Slab-granular adjacency iterator (§IV-B): "the iterator loads one slab
/// at a time and moves from one slab to the next using a next operator."
/// Algorithm 2 consumes adjacency lists through this, one slab per warp
/// iteration.
template <class Policy>
class EdgeSlabIterator {
 public:
  EdgeSlabIterator(const memory::SlabArena& arena, slabhash::TableRef table)
      : arena_(&arena), table_(table) {}

  /// Advances to the next slab in the table; false when exhausted.
  bool next();

  /// Key at slot `slot` of the current slab (kEmptyKey / kTombstoneKey
  /// sentinels included — callers filter, as Algorithm 2's lanes do).
  std::uint32_t key(int slot) const {
    return Policy::slot_key(arena_->resolve(current_), slot);
  }
  static constexpr int slots() { return Policy::kSlotCapacity; }

  memory::SlabHandle current_handle() const { return current_; }
  bool on_base_slab() const { return on_base_; }

 private:
  const memory::SlabArena* arena_;
  slabhash::TableRef table_;
  memory::SlabHandle current_ = memory::kNullSlab;
  std::uint32_t next_bucket_ = 0;
  bool on_base_ = false;
  bool started_ = false;
};

/// The paper's slab-based dynamic graph (one SlabHash table per vertex),
/// instantiated as DynGraphMap (per-edge weights) or DynGraphSet
/// (destinations only). Batched mutations and queries run through the
/// staged batch engine by default (GraphConfig::batch_engine); the
/// phase-concurrent contract — mutation batches never overlap query
/// batches — is the caller's responsibility on the synchronous API and is
/// ENFORCED by the scheduled submit_* API.
template <class Policy>
class DynGraph {
 public:
  /// \param config construction-time knobs (see docs/CONFIG.md for the
  ///        full reference). \throws std::invalid_argument on out-of-range
  ///        values (non-positive load_factor, auto_rehash_tail_frac
  ///        outside (0, 1]).
  explicit DynGraph(GraphConfig config);

  /// Tears down the scheduler first (queued submissions reject with
  /// SubmitRejected{kShutdown}, the conductor joins), then — if
  /// GraphConfig::snapshot_on_shutdown names a path — writes a final
  /// best-effort snapshot before the structure dies.
  ~DynGraph();

  DynGraph(const DynGraph&) = delete;
  DynGraph& operator=(const DynGraph&) = delete;

  // ---- construction workloads (§V-B) ---------------------------------
  /// Bulk build (§V-B1): degrees are known a priori, so every vertex gets
  /// ceil(d / (lf * Bc)) buckets up front, then all edges are inserted in
  /// one batched launch. Input edges are directed as given (symmetrize
  /// before calling for undirected graphs, or set config.undirected and
  /// pass each undirected edge once).
  void bulk_build(std::span<const WeightedEdge> edges);

  // ---- edge operations (§IV-C) ----------------------------------------
  /// Algorithm 1. Duplicates within the batch and against the graph are
  /// tolerated; self-loops are dropped; the most recent weight wins.
  /// Returns the number of *new* unique directed edges added.
  ///
  /// Failure (docs/ROBUSTNESS.md): if the arena runs dry mid-batch (chunk
  /// limit, injected fault) the engine path aborts CLEANLY — committed
  /// epochs stay applied, counters stay exact, and the call throws
  /// core::PartialBatchError carrying the applied count and the unapplied
  /// remainder; GraphConfig::on_pressure fires first. The graph remains
  /// consistent and keeps serving.
  std::uint64_t insert_edges(std::span<const WeightedEdge> edges);

  /// Batched deletion; returns the number of edges actually removed.
  /// Failure semantics as insert_edges (deletion never allocates, so only
  /// staging faults can abort it).
  std::uint64_t delete_edges(std::span<const Edge> edges);

  // ---- vertex operations (§IV-D) --------------------------------------
  /// Vertex insertion: dictionary entry (+ optional degree hint for bucket
  /// sizing) per §IV-D1. Edges attached to new vertices are then added
  /// with insert_edges / Algorithm 1.
  void insert_vertices(std::span<const VertexId> ids,
                       std::span<const std::uint32_t> degree_hints = {});

  /// Algorithm 2: deletes vertices and every edge pointing at them; frees
  /// dynamically allocated slabs; zeroes edge counts. For directed graphs
  /// the neighbour cleanup is the follow-up full sweep the paper describes.
  void delete_vertices(std::span<const VertexId> ids);

  // ---- queries (§IV-B) -------------------------------------------------
  /// Point lookup: true iff directed edge (u, v) is live. Never a false
  /// positive after vertex deletion (Algorithm 2's cleanup guarantee).
  bool edge_exists(VertexId u, VertexId v) const;

  /// Batched edgeExist: out[i] = 1 iff queries[i] is present. Runs as a
  /// warp launch (one query per lane).
  void edges_exist(std::span<const Edge> queries, std::uint8_t* out) const;

  /// Weight lookup; meaningful for the map variant only (set returns 0).
  slabhash::MapFindResult edge_weight(VertexId u, VertexId v) const
      requires Policy::kHasValues;

  /// Batched weight lookup riding the engine's bulk search path: for each
  /// query i, weights[i] receives the stored weight (0 on a miss) and, when
  /// `found` is non-null, found[i] = 1 iff the edge is present. One hash
  /// per key, one chain walk per (vertex, bucket) run — the batched
  /// analytics entry point dynamic-SSSP-style workloads read weights with.
  void edge_weights(std::span<const Edge> queries, Weight* weights,
                    std::uint8_t* found = nullptr) const
      requires Policy::kHasValues;

  // ---- bulk adjacency gather (analytics engine) ------------------------
  /// Batched neighborhood extraction: emits every requested vertex's live
  /// adjacency into disjoint slices of ONE presized output buffer,
  /// addressable by input position. The count pass is free — the Alg. 1/2
  /// per-vertex counters hold each exact live degree, so the prefix sum
  /// sizes the buffer without touching a slab — and the emit pass walks
  /// each vertex's chains once with one snapshot + SIMD mask per slab,
  /// chunked across the pool by `launch_runs` balanced on total degree.
  /// Unknown / deleted / never-touched vertices yield empty slices.
  /// Duplicate inputs are fine (each occurrence gets its own slice).
  ///
  /// Observed chain depths fold into ChainFeedback (inform-only, like
  /// query phases — gathers NEVER fire the auto-rehash policy; disable
  /// with GraphConfig::gather_feedback = false). Phase-concurrent with
  /// queries and other gathers; must not overlap mutations (use
  /// submit_analytics for the enforced contract).
  void gather_neighbors(std::span<const VertexId> vertices,
                        std::vector<std::uint64_t>& offsets,
                        std::vector<VertexId>& neighbors) const;

  /// Convenience overload returning the owned result.
  GatherResult gather_neighbors(std::span<const VertexId> vertices) const;

  // ---- scheduled mode (src/core/phase_scheduler.hpp) -------------------
  // The async entry points: safe to call from ANY thread, concurrently
  // with each other. Submissions are classified by kind and run as fenced
  // phases — mutation batches never overlap query batches, which the
  // synchronous API above leaves to the caller. With
  // GraphConfig::phase_scheduler = false they degrade to synchronous
  // inline execution returning ready futures (the differential reference;
  // no cross-thread safety). FIFO: one thread's submissions apply in its
  // program order, and a query submitted after a mutation's future
  // resolved is guaranteed to observe that mutation.
  //
  // Admission control (docs/ROBUSTNESS.md): with
  // GraphConfig::max_pending_submissions / max_pending_edges set, the
  // pending queue is bounded and GraphConfig::backpressure selects what
  // happens at the cap — block the submitter (optionally bounded by
  // submit_timeout_ms), reject the newcomer, or shed the oldest pending
  // queries. Refused submissions resolve their future to
  // core::SubmitRejected with a typed reason; submitting to a destroyed
  // (stopping) graph throws it synchronously.

  /// Scheduled insert_edges.
  /// \param edges the batch (moved into the scheduler; duplicates and
  ///        self-loops resolve exactly as in insert_edges).
  /// \return future resolving, once the mutation phase committed, to the
  ///         number of new unique directed edges the submission's
  ///         COALESCED GROUP added: consecutive insert submissions
  ///         admitted into one phase merge into a single engine batch
  ///         (shared epochs), and every member observes the group total —
  ///         a submission that ran alone gets its exact count.
  std::future<std::uint64_t> submit_insert(std::vector<WeightedEdge> edges);

  /// Scheduled delete_edges; group semantics as submit_insert.
  /// \return future resolving to the edges removed by the coalesced group.
  std::future<std::uint64_t> submit_erase(std::vector<Edge> edges);

  /// Scheduled edges_exist.
  /// \param deadline_ms staleness bound (0 = none): if the phase that
  ///        would run the query opens later than deadline_ms after
  ///        submission, the conductor rejects it at admission and the
  ///        future resolves to SubmitRejected{kDeadlineExpired}. Ignored
  ///        in inline mode (the query runs immediately).
  /// \return future resolving to out[i] = 1 iff queries[i] was present in
  ///         the phase-consistent state the query phase ran against. Query
  ///         batches admitted into one phase run concurrently, each
  ///         internally pipelined.
  std::future<std::vector<std::uint8_t>> submit_edges_exist(
      std::vector<Edge> queries, std::uint32_t deadline_ms = 0);

  /// Scheduled edge_weights (map variant only).
  /// \return future resolving to {weights, found} for each query, with the
  ///         same phase-consistency guarantee (and deadline semantics) as
  ///         submit_edges_exist.
  std::future<EdgeWeightBatch> submit_edge_weights(std::vector<Edge> queries,
                                                   std::uint32_t deadline_ms = 0)
      requires Policy::kHasValues;

  /// Scheduled analytics: `task` runs inside a fenced ANALYTICS phase —
  /// never overlapping a mutation phase, so gather_neighbors and the
  /// read-only query API are safe inside it without external locking.
  /// FIFO with the submitter's other submissions: an analytics task
  /// submitted after an insert observes that insert (the delta-TC
  /// pipeline's exist → insert → analytics epoch rides exactly this).
  /// Consecutive analytics submissions admitted into one phase run
  /// concurrently on the pool. The future resolves when the task returns,
  /// or carries its exception.
  std::future<void> submit_analytics(std::function<void()> task);

  /// Blocks until every submission accepted so far has completed and no
  /// phase is open. Call before destroying submitter state the futures
  /// reference, or before ThreadPool::resize (which must not run while
  /// jobs are in flight). A graph with no scheduler (never submitted, or
  /// phase_scheduler = false) returns immediately.
  void schedule_drain();

  /// Counters of the scheduled stream: phase switches (each one paid a
  /// fence), coalesced submissions, fence wait time, per-kind phase and
  /// submission counts. All zeros when nothing was ever submitted.
  PhaseScheduleStats last_schedule_stats() const;

  // ---- durability (src/persist/, docs/ROBUSTNESS.md "Durability") ------
  /// Scheduled snapshot: persist::snapshot(*this, path) runs inside a
  /// fenced ANALYTICS phase, so the cut is epoch-consistent under
  /// concurrent submitters — every mutation whose future resolved before
  /// this call is in the file, and no mutation submitted after it leaks
  /// in. The future resolves when the file is durably renamed into place,
  /// or carries the write's exception (persist::IoError). Inline mode
  /// (phase_scheduler = false) writes synchronously — the phase-concurrent
  /// contract is then the caller's, exactly as for gather_neighbors.
  std::future<void> submit_snapshot(std::string path);

  /// Attaches the write-ahead batch journal at `path` (normally done by
  /// the constructor from GraphConfig::journal_path). An existing file is
  /// scanned: a torn tail is truncated to the last valid record
  /// (journal_truncated_on_attach() reports how much), mid-file corruption
  /// throws persist::CorruptJournal, and the sequence continues after
  /// max(file's last record, this graph's cursor) — recovery replays
  /// first, then attaches. Requires batch_engine; throws std::logic_error
  /// if a journal is already attached.
  void attach_journal(const std::string& path);
  bool has_journal() const noexcept { return journal_ != nullptr; }

  /// The journal cursor: sequence number of the last journal record this
  /// graph's state contains (0 = none). Snapshots embed it as the cut;
  /// replay skips records at/below it.
  std::uint64_t journal_seq() const noexcept {
    return journal_seq_.load(std::memory_order_relaxed);
  }
  /// Raises the cursor (snapshot restore / journal replay; never lowers).
  void advance_journal_seq(std::uint64_t seq) {
    std::uint64_t cur = journal_seq_.load(std::memory_order_relaxed);
    while (seq > cur &&
           !journal_seq_.compare_exchange_weak(cur, seq,
                                               std::memory_order_relaxed)) {
    }
  }
  /// Torn-tail bytes the attach truncated (0 = clean file or no journal).
  std::uint64_t journal_truncated_on_attach() const noexcept;

  /// Visits every live neighbour of `u` (and weight; 0 for the set variant).
  void for_each_neighbor(VertexId u,
                         const std::function<void(VertexId, Weight)>& fn) const;

  /// Slab-granular iterator over `u`'s adjacency list.
  EdgeSlabIterator<Policy> edge_iterator(VertexId u) const {
    return EdgeSlabIterator<Policy>(arena_, dict_.table(u));
  }

  /// Exact out-degree (maintained by Alg. 1/2 counters).
  std::uint32_t degree(VertexId u) const { return dict_.edge_count(u); }

  /// Total live directed edges (undirected edges count twice).
  std::uint64_t num_edges() const { return dict_.total_edges(); }

  /// Current vertex-dictionary capacity (ids below this are addressable).
  std::uint32_t vertex_capacity() const { return dict_.capacity(); }
  /// True iff `u` has a table and is not marked deleted.
  bool vertex_live(VertexId u) const {
    return u < dict_.capacity() && dict_.has_table(u) && !dict_.deleted(u);
  }

  /// Pre-extends the vertex dictionary (pointer-copy growth).
  void reserve_vertices(std::uint32_t capacity) { dict_.grow(capacity); }

  // ---- maintenance & accounting ----------------------------------------
  /// Flush tombstones of every table (the paper's optional compaction).
  void flush_all_tombstones();

  // ---- temporal aging & arena compaction (src/stream/, docs/WORKLOADS.md
  // "Sliding-window streaming") ------------------------------------------

  /// Retires every edge whose timestamp (the stored weight — see
  /// src/core/types.hpp: w stands in for per-edge meta-data) is STRICTLY
  /// below `threshold`, as ONE bulk-erase batch riding the engine's
  /// double-buffered pipeline. The DynoGraph aging idiom: with timestamps
  /// from getTimestampForWindow, `ts < threshold` keeps exactly the live
  /// window (an edge AT the threshold survives). Undirected graphs scan
  /// each edge once (mirrors carry the same timestamp and are erased by
  /// the same batch). Phase-serial like delete_edges — use submit_age_out
  /// under concurrent submitters. Returns the directed edges removed.
  std::uint64_t delete_edges_older_than(Weight threshold)
      requires Policy::kHasValues;

  /// What one compact() call did (last_compact_stats()).
  struct CompactStats {
    std::uint32_t victim_chunks = 0;    ///< chunks below compact_occupancy
    std::uint64_t migrated_slabs = 0;   ///< overflow slabs moved out of victims
    std::uint32_t released_chunks = 0;  ///< 1 MiB chunks returned to the OS
    std::uint32_t shrunk_tables = 0;    ///< tables rebuilt at a smaller size
    std::uint32_t chunks_before = 0;    ///< live chunks entering the call
    std::uint32_t chunks_after = 0;     ///< live chunks leaving the call
  };

  /// Arena compaction, two passes. (1) Table shrink: every table whose
  /// live count warrants at most HALF its current buckets is rebuilt
  /// right-sized and the old base range returned to the arena — tables are
  /// otherwise sized for the peak degree they ever saw, and under a
  /// sliding window that high-water mark only ratchets up (the half
  /// hysteresis keeps shrink from ping-ponging with the auto-rehash grow
  /// trigger). (2) Chunk migration: surviving overflow slabs of sparse
  /// dynamic chunks (allocated fraction < GraphConfig::compact_occupancy)
  /// move into denser chunks — rewriting the owning chain's next pointer —
  /// then emptied chunks (dynamic AND fully-freed bulk) return to the OS,
  /// keeping GraphConfig::compact_keep_free_chunks as an allocation
  /// reserve. Sliding-window churn retires slabs all over the address
  /// space; without both passes, steady-state RSS rides the high-water
  /// mark forever. Tombstones are flushed first so shrink sizes from real
  /// occupancy and migration never copies dead chains. Phase-serial (no
  /// concurrent operations of any kind); use submit_compact under
  /// concurrent submitters. Returns the stats also available from
  /// last_compact_stats().
  CompactStats compact();
  const CompactStats& last_compact_stats() const {
    return last_compact_stats_;
  }

  /// Scheduled delete_edges_older_than: runs as a MAINTENANCE submission —
  /// mutation-kind, so it owns an exclusive write window, and never
  /// coalesced with neighboring insert/erase submissions. FIFO with the
  /// submitter's other submissions: inserts submitted before it are aged
  /// against, analytics submitted after it observe the retired state. The
  /// future resolves to the directed edges removed. Inline mode
  /// (phase_scheduler = false) executes synchronously.
  std::future<std::uint64_t> submit_age_out(Weight threshold)
      requires Policy::kHasValues;

  /// Scheduled compact(), same maintenance semantics as submit_age_out.
  /// The future resolves to the number of chunks released.
  std::future<std::uint64_t> submit_compact();

  /// Raw maintenance hook: `task` runs as a MAINTENANCE submission —
  /// mutation-kind, alone (never coalesced), INLINE ON THE CONDUCTOR
  /// THREAD, owning an exclusive write window over this graph. That
  /// inline guarantee is what the sharding tier's cross-shard fence is
  /// built on (src/shard/shard_conductor.hpp): a barrier closure
  /// submitted here may block waiting for its siblings on OTHER graphs'
  /// conductors without ever occupying a ThreadPool worker, so N parked
  /// fences cannot starve the pool that must finish the phases in front
  /// of them. The future resolves to the task's count, or carries its
  /// exception. Inline mode (phase_scheduler = false) executes the task
  /// synchronously on the calling thread — callers that block on
  /// cross-graph state must not use it there (ShardedGraph bypasses the
  /// fence entirely in inline mode).
  std::future<std::uint64_t> submit_maintenance(
      std::function<std::uint64_t()> task);

  /// The §III maintenance hook: "maintain low-cost metrics per vertex to
  /// determine the chain-length and periodically perform rehashing if it
  /// exceeds a given threshold." Rebuilds every table whose expected chain
  /// length (live keys / (buckets * Bc)) exceeds `max_chain_slabs` into a
  /// table sized for the configured load factor. Returns the number of
  /// tables rehashed. Phase-serial (must not run concurrently with other
  /// operations). Old base slabs are abandoned (bulk slabs are never
  /// reclaimed, matching §IV-D2); overflow slabs are freed.
  ///
  /// With the batch engine on, the scan is TARGETED: apply observes every
  /// run's chain length for free (ChainFeedback), and only vertices seen
  /// past their base slab are revisited — a chain cannot grow without a
  /// bulk operation walking it. Falls back to the full sweep when
  /// `full_scan` is set, when the engine is off (scalar inserts report no
  /// feedback), or when `max_chain_slabs < 1` (sub-slab thresholds can
  /// flag tables that never chained). last_rehash_stats() reports which
  /// path ran and how many tables it examined.
  std::uint32_t rehash_long_chains(double max_chain_slabs = 1.0,
                                   bool full_scan = false);

  /// Tables examined / rebuilt by the last rehash_long_chains call.
  struct RehashStats {
    std::uint64_t scanned = 0;
    std::uint32_t rehashed = 0;
    bool targeted = false;
  };
  const RehashStats& last_rehash_stats() const { return last_rehash_stats_; }

  /// Chain-length histogram + candidate list accumulated by apply since
  /// the last targeted rehash consumed it (introspection for tests and the
  /// pipeline bench).
  const ChainFeedback& chain_feedback() const { return feedback_; }

  /// Stage/apply wall-clock profile of the last batched mutation,
  /// including the overlap the double buffer achieved and the bytes the
  /// driver copied to assemble shard output (0 under merge-free staging).
  const BatchPipelineStats& last_batch_stats() const {
    return pipeline_stats_;
  }

  /// Stage/search profile of the last batched query (edges_exist /
  /// edge_weights): apply_seconds is the bulk-search window, and
  /// overlap_seconds measures how much of slice N+1's staging hid behind
  /// slice N's searches. Query batches may run concurrently; the profile
  /// is of whichever batch finished last.
  BatchPipelineStats last_query_stats() const {
    std::lock_guard<std::mutex> lock(query_stats_mutex_);
    return query_stats_;
  }

  /// Times the automatic rehash policy (GraphConfig::auto_rehash_p99_slabs)
  /// fired over this graph's lifetime.
  std::uint64_t auto_rehash_triggers() const noexcept {
    return auto_rehash_count_;
  }

  /// Aggregated slab/occupancy accounting over all adjacency tables
  /// (Figure 2's utilization and chain-length axes). Phase-serial.
  GraphMemoryStats memory_stats() const;
  /// Allocator-level accounting (chunks, live slabs, bytes).
  memory::ArenaStats arena_stats() const { return arena_.stats(); }
  /// The construction-time configuration in effect.
  const GraphConfig& config() const { return config_; }
  /// Times the vertex dictionary grew (pointer-copy growth events).
  std::uint32_t dictionary_growths() const { return dict_.growth_count(); }

 private:
  /// Serial pre-pass of every batched mutation: validates ids and grows the
  /// dictionary to cover the batch (pointer-copy growth must not race the
  /// parallel phase).
  void prepare_batch(std::span<const WeightedEdge> edges);
  void ensure_vertex(VertexId u, std::uint32_t degree_hint);

  /// Table lookup on the insert path; creates a single-bucket table on
  /// first use ("if the connectivity information for a vertex is not
  /// available, we construct a hash table with a single bucket") and
  /// revives deleted sources. Safe under concurrent warps.
  slabhash::TableRef acquire_table(VertexId u);

  // Scalar Algorithm-1 oracle (src/core/scalar_oracle.hpp): retained as the
  // differential reference for engine-off configs and tests; undirected
  // batches mirror in place (no temp vector), never on the engine path.
  std::uint64_t insert_directed(std::span<const WeightedEdge> edges);
  std::uint64_t delete_directed(std::span<const Edge> edges);

  // Batch-engine paths (selected by SlabGraphConfig::batch_engine): stage
  // sharded, group into per-(vertex, bucket) runs, apply through the bulk
  // slab ops — with large batches split into double-buffered epochs whose
  // staging overlaps the previous epoch's apply.
  std::uint64_t insert_batched(std::span<const WeightedEdge> edges);
  std::uint64_t delete_batched(std::span<const Edge> edges);
  void exist_batched(std::span<const Edge> queries, std::uint8_t* out) const;
  /// Shared batched-search driver (edges_exist / edge_weights): the query
  /// batch splits into double-buffered epochs — stage+group of slice N+1
  /// runs as a background pool job while the bulk searches of slice N run
  /// — with results scattered to input positions through the staged
  /// sequence numbers and observed chain lengths folded into feedback_.
  /// Staging is local (query batches stay concurrent with each other).
  void search_batched(std::span<const Edge> queries, std::uint8_t* found_out,
                      Weight* weights_out) const;
  /// Runs the bulk searches of one staged query slice, scattering hits
  /// into the caller's output arrays.
  void search_apply_runs(const BatchStaging& staged, std::uint8_t* found_out,
                         Weight* weights_out, bool overlapped) const;
  /// The §III auto-rehash policy: fires rehash_long_chains when more than
  /// config_.auto_rehash_tail_frac of the live chain histogram sits
  /// at/above config_.auto_rehash_p99_slabs. Called after every batched
  /// mutation, under batch_mutex_.
  void maybe_auto_rehash();
  /// Creates the phase scheduler on first use (thread-safe; the conductor
  /// thread is only ever paid by graphs that actually submit).
  PhaseScheduler& ensure_scheduler();
  /// Refuses mutations once the journal poisoned itself (a failed append
  /// may have left a torn tail on disk): the in-memory graph must not
  /// advance past what recovery can rebuild. Throws persist::IoError.
  void ensure_journal_usable() const;
  /// Appends a committed batch to the journal, advancing the cursor.
  /// Called at the success tail of the batched mutation paths, under
  /// batch_mutex_ (vertex ops are phase-serial and append directly; the
  /// Journal's own mutex backstops the ordering either way).
  void journal_insert(std::span<const WeightedEdge> edges);
  void journal_erase(std::span<const Edge> edges);
  /// Best-effort committed-prefix journaling on a PartialBatchError abort:
  /// the input batch minus the unapplied pairs is exactly the state the
  /// abort left (core::PartialBatchError documents this), so replaying the
  /// filtered record rebuilds it. A journal failure here is swallowed —
  /// the PartialBatchError is the caller's signal, and the journal has
  /// poisoned itself against further appends.
  void journal_insert_committed(std::span<const WeightedEdge> edges,
                                const std::vector<Edge>& unapplied) noexcept;
  void journal_erase_committed(std::span<const Edge> edges,
                               const std::vector<Edge>& unapplied) noexcept;
  /// Shared stage-3 driver: runs scheduled by query count, head slabs
  /// software-pipelined, per-source counter deltas aggregated before the
  /// atomic. `erase` flips between bulk_insert/counter-add and
  /// bulk_erase/counter-subtract. `overlapped` tightens launch chunking so
  /// apply interleaves with a concurrent staging job. Chain lengths
  /// observed per run fold into feedback_.
  std::uint64_t apply_mutation_runs(const BatchStaging& staged, bool erase,
                                    bool overlapped);
  /// The double-buffered epoch driver shared by the mutation AND query
  /// pipelines: plans epochs from config and pool width, stages slice 0
  /// synchronously, then alternates apply(slice e) with a single-chunk
  /// background job staging slice e+1, fencing on the job before the
  /// buffer swap and folding the stage/apply window intersection into
  /// `stats`. `stage_epoch(buf, begin, end, shards)` stages + groups +
  /// finalizes one input sub-span into `buf` (recording its window);
  /// `apply(front, overlapped)` consumes one staged slice and returns its
  /// contribution to the total. `stage_items_factor` scales epoch size to
  /// staged queries for the shard-count heuristic (2 when undirected
  /// mutations mirror in place).
  template <typename StageEpochFn, typename ApplyFn>
  std::uint64_t run_epoch_pipeline(std::uint64_t num_items,
                                   std::uint32_t stage_items_factor,
                                   ShardedStaging* cur, ShardedStaging* nxt,
                                   BatchPipelineStats& stats,
                                   StageEpochFn&& stage_epoch,
                                   ApplyFn&& apply) const;
  /// The mutation pipeline over the member double buffer:
  /// stage_shard(epoch_span_begin, epoch_span_end, shard, num_shards, out)
  /// stages one shard of one epoch sub-span of the input batch.
  template <typename StageShardFn>
  std::uint64_t run_mutation_pipeline(std::uint64_t num_edges,
                                      bool gather_values, bool erase,
                                      StageShardFn&& stage_shard);
  /// Stage shards resolved from config, pool width, and batch size (power
  /// of two): auto mode caps shards so each stages a worthwhile slice —
  /// every shard scans the whole input, so slicing a small batch N ways
  /// costs more in duplicate scanning than the parallel sort returns.
  std::uint32_t stage_shard_count(std::uint64_t items) const;
  /// Rebuilds `u`'s table if its expected chain exceeds the threshold.
  bool maybe_rehash_table(VertexId u, double max_chain_slabs);
  /// Rebuilds `u`'s table at `buckets` buckets: move live keys, free the
  /// old overflow chain, swap the dictionary pointer, return the old base
  /// range to the arena. Shared by grow (maybe_rehash_table) and shrink
  /// (compact). Phase-serial.
  void rebuild_table(VertexId u, const slabhash::TableRef& old_table,
                     std::uint32_t buckets);

  GraphConfig config_;
  mutable memory::SlabArena arena_;
  VertexDictionary dict_;
  std::mutex lazy_table_mutex_;  ///< serializes first-touch table creation
  /// Double-buffered staging areas of the batch engine. Mutation batches
  /// are phases (the phase-concurrent model forbids overlapping them), so
  /// two buffers — the applying epoch and the staging epoch — serve every
  /// insert/erase batch; `batch_mutex_` enforces the contract instead of
  /// trusting it. Query batches (edges_exist / edge_weights) stage into
  /// local buffers and stay concurrent with each other.
  ShardedStaging staging_bufs_[2];
  std::mutex batch_mutex_;
  BatchPipelineStats pipeline_stats_;
  /// Query-batch profile. Mutable + mutex: edges_exist / edge_weights are
  /// const and may run concurrently with each other (phase-concurrent
  /// queries); each batch computes its profile locally and publishes it
  /// whole under the lock.
  mutable BatchPipelineStats query_stats_;
  mutable std::mutex query_stats_mutex_;
  /// Run chain lengths observed by apply AND by bulk searches (queries are
  /// const, hence mutable; feedback_mutex_ serializes the merges).
  mutable ChainFeedback feedback_;
  mutable std::mutex feedback_mutex_;
  RehashStats last_rehash_stats_;
  CompactStats last_compact_stats_;
  std::uint64_t auto_rehash_count_ = 0;
  /// Write-ahead batch journal (GraphConfig::journal_path; null = none).
  /// Declared BEFORE the scheduler block so it outlives the conductor's
  /// Ops callbacks during destruction.
  std::unique_ptr<persist::Journal> journal_;
  /// Journal cursor: last record sequence this graph's state contains.
  /// Restore sets it to the snapshot's cut, replay advances it, and every
  /// append keeps it equal to the journal's last durable record.
  std::atomic<std::uint64_t> journal_seq_{0};
  /// Scheduled mode (GraphConfig::phase_scheduler): created on the first
  /// submit_* call under scheduler_once_ and published through the atomic
  /// pointer (schedule_drain / last_schedule_stats read it without racing
  /// the creation). LAST members on purpose — destroyed FIRST, so the
  /// conductor drains and joins while every member its Ops callbacks reach
  /// is still alive.
  std::once_flag scheduler_once_;
  std::unique_ptr<PhaseScheduler> scheduler_;
  std::atomic<PhaseScheduler*> scheduler_ptr_{nullptr};
};

using DynGraphMap = DynGraph<MapPolicy>;
using DynGraphSet = DynGraph<SetPolicy>;

extern template class DynGraph<MapPolicy>;
extern template class DynGraph<SetPolicy>;
extern template class EdgeSlabIterator<MapPolicy>;
extern template class EdgeSlabIterator<SetPolicy>;

}  // namespace sg::core
