// Staged batch-update engine (docs/PERF.md "Batch engine").
//
// The paper's Algorithm 1 earns its GPU throughput from warp-cooperative,
// coalesced batch insertion; the scalar CPU port still dispatched one query
// at a time, so every key paid a full hash + cold chain walk. The engine
// restructures every batched mutation/query into three stages, the same
// pre-staging discipline the dynamic-graph baselines (Hornet, faimGraph)
// apply before touching their stores:
//
//   1. STAGE (serial)  — walk the input batch once, emitting each direction
//      of an undirected edge directly into the staged SoA arrays (no 2x
//      mirrored temp vector), dropping self-loops, creating missing vertex
//      tables, and pre-hashing each key ONCE into its destination bucket.
//   2. GROUP (sort + scan) — stable-radix-sort the staged queries by the
//      packed (vertex, bucket) segment id (sort::radix_sort_hi — the same
//      pack-the-segment-into-the-high-bits strategy segmented_sort uses),
//      then scan once to cut the batch into per-(vertex, bucket) runs,
//      ordering each multi-query run by (key, sequence) and dropping
//      duplicates — the highest sequence number, i.e. the most recent
//      occurrence, wins, preserving the "most recent edge and its weight"
//      semantics deterministically.
//   3. APPLY (parallel) — simt::launch_runs schedules contiguous run ranges
//      balanced by query count; each warp walks a run's bucket chain once
//      through the slabhash bulk entry points, software-pipelining the next
//      run's head slab (simt::pipeline + prefetch) while the current slab's
//      SIMD compares resolve.
//
// The engine owns the run partition: a (table, bucket) pair appears in at
// most one run per batch, which is the exclusivity contract the bulk slab
// operations rely on to share one EMPTY scan per slab.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/slabhash/slab_layout.hpp"
#include "src/sort/segmented_sort.hpp"

namespace sg::core {

/// Runs this many positions ahead of the probe loop when prefetching head
/// slabs (stage 3's software-pipeline depth).
inline constexpr std::uint64_t kRunPrefetchDepth = 4;

/// One staged run: queries keys[run_offsets[r] .. run_offsets[r+1]) of a
/// BatchStaging all hash to `bucket` of vertex `src`'s table.
struct QueryRun {
  VertexId src = 0;
  std::uint32_t bucket = 0;
};

/// Staging area of one batched operation. The staged key of a query packs
///   hi = src << 13 | bucket     (num_buckets <= SlabArena::kChunkSlabs)
///   lo = key << 32 | sequence   (sequence = staged order, for last-wins)
/// so one global sort yields the (vertex, bucket) grouping, key adjacency
/// for dedup, and deterministic most-recent-wins ordering at once.
class BatchStaging {
 public:
  static constexpr std::uint32_t kBucketBits = 13;
  static_assert(memory::SlabArena::kChunkSlabs <= (1u << kBucketBits),
                "bucket ids must fit the packed staging key");

  // ---- staged queries, grouped into runs (stage 2 outputs) --------------
  std::vector<std::uint32_t> keys;         ///< query keys, run-contiguous
  std::vector<std::uint32_t> values;       ///< parallel values (map inserts)
  std::vector<std::uint32_t> seqs;         ///< parallel input positions
  std::vector<QueryRun> runs;
  std::vector<std::uint64_t> run_offsets;  ///< runs.size() + 1 entries

  std::uint64_t staged = 0;   ///< queries emitted by stage 1
  std::uint64_t dropped = 0;  ///< self-loops / unknown-source queries
  std::uint64_t duplicates = 0;  ///< queries removed by dedup

  void clear() {
    keys.clear();
    values.clear();
    seqs.clear();
    runs.clear();
    run_offsets.clear();
    order_.clear();
    weights_.clear();
    staged = dropped = duplicates = 0;
  }

  /// Stage one directed query (stage 1). `table` must be the source's
  /// table; the key is hashed here — once, never again.
  void push(VertexId src, std::uint32_t key, slabhash::TableRef table,
            std::uint64_t seed) {
    const std::uint32_t bucket =
        slabhash::bucket_of(key, table.num_buckets, seed);
    const std::uint64_t hi = (static_cast<std::uint64_t>(src) << kBucketBits) |
                             bucket;
    const std::uint64_t lo = (static_cast<std::uint64_t>(key) << 32) |
                             static_cast<std::uint32_t>(staged);
    order_.push_back({hi, lo});
    ++staged;
  }
  void push_weighted(VertexId src, std::uint32_t key, Weight weight,
                     slabhash::TableRef table, std::uint64_t seed,
                     bool keep_weight) {
    if (keep_weight) weights_.push_back(weight);
    push(src, key, table, seed);
  }

  void reserve(std::size_t queries, bool weighted) {
    order_.reserve(queries);
    if (weighted) weights_.reserve(queries);
  }

  /// Stage 2: sort, optionally dedup (mutations dedup, searches keep every
  /// query so results can scatter back per input position), and cut runs.
  /// `gather_values` copies the staged weights into `values` run-order;
  /// `gather_seqs` keeps the input positions (searches scatter results
  /// through them; mutations don't need them).
  void group(bool dedup, bool gather_values, bool gather_seqs);

 private:
  std::vector<sort::U128> order_;       ///< staged (hi, lo) sort records
  std::vector<sort::U128> scratch_;     ///< radix ping-pong buffer
  std::vector<std::uint32_t> weights_;  ///< sequence -> weight (stage 1)
};

/// Stage-1 helpers shared by DynGraph's batched paths. `table_of(src)`
/// returns the source's table — creating it for insertions, returning an
/// invalid ref to drop the query for erase/search on unknown sources. It
/// runs serially, so it may grow/mutate the dictionary freely.

template <typename TableFn>
void stage_weighted_edges(std::span<const WeightedEdge> edges, bool undirected,
                          bool keep_weights, std::uint64_t seed,
                          TableFn&& table_of, BatchStaging& st) {
  st.clear();
  st.reserve(edges.size() * (undirected ? 2 : 1), keep_weights);
  for (const WeightedEdge& e : edges) {
    if (e.src == e.dst) {  // self-loops drop (Algorithm 1 line 3)
      ++st.dropped;
      continue;
    }
    const slabhash::TableRef fwd = table_of(e.src);
    if (fwd.valid()) {
      st.push_weighted(e.src, e.dst, e.weight, fwd, seed, keep_weights);
    } else {
      ++st.dropped;
    }
    if (undirected) {  // mirror staged in place: no doubled temp batch
      const slabhash::TableRef rev = table_of(e.dst);
      if (rev.valid()) {
        st.push_weighted(e.dst, e.src, e.weight, rev, seed, keep_weights);
      } else {
        ++st.dropped;
      }
    }
  }
}

template <typename TableFn>
void stage_edges(std::span<const Edge> edges, bool undirected,
                 std::uint64_t seed, TableFn&& table_of, BatchStaging& st) {
  st.clear();
  st.reserve(edges.size() * (undirected ? 2 : 1), false);
  for (const Edge& e : edges) {
    const slabhash::TableRef fwd = table_of(e.src);
    if (fwd.valid()) {
      st.push(e.src, e.dst, fwd, seed);
    } else {
      ++st.dropped;
    }
    if (undirected) {
      const slabhash::TableRef rev = table_of(e.dst);
      if (rev.valid()) {
        st.push(e.dst, e.src, rev, seed);
      } else {
        ++st.dropped;
      }
    }
  }
}

/// Stage queries that must scatter results back to their input position:
/// seqs[i] is the ORIGINAL index of staged query i (one staged query per
/// input at most; dropped inputs simply have no staged query).
template <typename TableFn>
void stage_queries(std::span<const Edge> queries, std::uint64_t seed,
                   TableFn&& table_of, BatchStaging& st) {
  st.clear();
  st.reserve(queries.size(), false);
  for (const Edge& q : queries) {
    const slabhash::TableRef table = table_of(q.src);
    if (table.valid()) {
      st.push(q.src, q.dst, table, seed);
    } else {
      ++st.dropped;  // unknown source: the caller's output stays 0
      ++st.staged;   // keep sequence == input position
    }
  }
}

}  // namespace sg::core
