// Staged batch-update engine (docs/PERF.md "Batch engine").
//
// The paper's Algorithm 1 earns its GPU throughput from warp-cooperative,
// coalesced batch insertion; the scalar CPU port still dispatched one query
// at a time, so every key paid a full hash + cold chain walk. The engine
// restructures every batched mutation/query into three stages, the same
// pre-staging discipline the dynamic-graph baselines (Hornet, faimGraph)
// apply before touching their stores:
//
//   1. STAGE (sharded, parallel) — shard s owns every vertex u with
//      u % shards == s. Each shard walks the input batch once, emitting
//      the directions it owns straight into its staged SoA arrays (no 2x
//      mirrored temp vector), dropping self-loops, creating missing vertex
//      tables (exclusive per shard: no lazy-creation mutex), and
//      pre-hashing each key ONCE into its destination bucket.
//   2. GROUP (per-shard sort + scan) — stable-radix-sort the shard's
//      queries by the packed (vertex, bucket) segment id
//      (sort::radix_sort_hi with the hi OR/AND masks accumulated for free
//      during staging), then scan once to cut the shard into
//      per-(vertex, bucket) runs, ordering each multi-query run by
//      (key, sequence) and dropping duplicates — the highest sequence
//      number, i.e. the most recent occurrence, wins. Ownership makes the
//      dedup exhaustive: every occurrence of a (vertex, key) pair lands in
//      the one shard that owns the vertex, so "most recent edge and its
//      weight" stays deterministic across shard boundaries. Grouping is
//      TWO-PASS and merge-free: shards first COUNT their runs and
//      post-dedup keys, the counts prefix-sum into disjoint slices of one
//      presized global run list, and shards then PLACE their output
//      directly into those slices in parallel — stage 3 consumes shard
//      output with zero driver-side copy (the PR 3 concatenating merge
//      survives only as a differential reference, GraphConfig::merge_free
//      = false).
//   3. APPLY (parallel) — simt::launch_runs schedules contiguous run
//      ranges balanced by query count; each warp walks a run's bucket
//      chain once through the slabhash bulk entry points, software-
//      pipelining the next run's head slab (simt::pipeline + prefetch)
//      while the current slab's SIMD compares resolve. The bulk operations
//      report each run's observed chain length, which apply folds into a
//      ChainFeedback histogram — the §III chain-length metric — so
//      rehash_long_chains can target offenders instead of scanning every
//      vertex.
//
// Large batches additionally split into EPOCHS and double-buffer: epoch
// e+1 runs stages 1-2 as a background ThreadPool job while epoch e runs
// stage 3 on the same pool (round-robin chunk interleaving). Epochs apply
// in input order — the pipeline fence — so counter deltas and cross-epoch
// duplicate resolution commit exactly as the unsplit batch would. QUERY
// batches (edges_exist / edge_weights) pipeline through the identical
// epoch machinery — stage+group of query slice N+1 overlaps the bulk
// searches of slice N — with results scattered to input positions through
// the staged sequence numbers, and the bulk searches feed chain lengths
// into ChainFeedback exactly as mutations do.
//
// The engine owns the run partition: a (table, bucket) pair appears in at
// most one run per epoch, which is the exclusivity contract the bulk slab
// operations rely on to share one EMPTY scan per slab.
//
// The engine is still PHASE-concurrent: a mutation batch must never
// overlap a query batch. On the synchronous API that contract is the
// caller's obligation; the phase scheduler (src/core/phase_scheduler.hpp,
// DynGraph::submit_*) enforces it for scheduled callers by fencing
// mutation phases from query phases and feeding coalesced submissions
// through this engine — see docs/ARCHITECTURE.md.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/core/types.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/slabhash/slab_layout.hpp"
#include "src/sort/segmented_sort.hpp"

namespace sg::core {

/// Internal abort signal of one epoch's apply stage: the arena ran dry (or
/// a fault was injected) while applying staged runs. Carries the epoch's
/// exact outcome — what was applied (and therefore counted) and which
/// staged (src, dst) pairs were not — so the pipeline driver can fold it
/// into a caller-facing PartialBatchError together with the epochs that
/// never applied. Never escapes DynGraph.
struct MutationAbort {
  std::uint64_t applied = 0;        ///< keys applied (and counted) this epoch
  std::vector<Edge> unapplied;      ///< staged pairs of this epoch not applied
};

/// Internal wrapper the epoch pipeline throws after catching a
/// MutationAbort from the apply stage: adds which input items the failing
/// epoch covered, so the caller can extend the unapplied set with every
/// later epoch's raw input. Never escapes DynGraph.
struct PipelineAbort {
  MutationAbort epoch;               ///< the failing epoch's outcome
  std::uint64_t epoch_begin_item = 0;  ///< first input item of that epoch
  std::uint64_t epoch_end_item = 0;    ///< one past its last input item
  std::uint64_t applied_before = 0;    ///< keys applied by earlier epochs
};

/// Runs this many positions ahead of the probe loop when prefetching head
/// slabs (stage 3's software-pipeline depth).
inline constexpr std::uint64_t kRunPrefetchDepth = 4;

/// Upper bound on stage shards (the auto heuristic is one per pool worker;
/// past this, per-shard sort histograms stop paying for themselves).
inline constexpr std::uint32_t kMaxStageShards = 32;

/// Owning shard of vertex `u` under `num_shards` (a power of two) shards.
/// A strided partition: hub vertices with nearby ids land in different
/// shards, so skewed batches still stage in parallel.
inline std::uint32_t shard_of_vertex(VertexId u,
                                     std::uint32_t num_shards) noexcept {
  return u & (num_shards - 1u);
}

/// One staged run: queries keys[run_offsets[r] .. run_offsets[r+1]) of a
/// BatchStaging all hash to `bucket` of vertex `src`'s table.
struct QueryRun {
  VertexId src = 0;
  std::uint32_t bucket = 0;
};

/// Staging area of one batched operation (one shard's worth when staging
/// is sharded). The staged key of a query packs
///   hi = src << 13 | bucket     (num_buckets <= SlabArena::kChunkSlabs)
///   lo = key << 32 | sequence   (sequence = staged order, for last-wins)
/// so one sort yields the (vertex, bucket) grouping, key adjacency for
/// dedup, and deterministic most-recent-wins ordering at once.
class BatchStaging {
 public:
  static constexpr std::uint32_t kBucketBits = 13;
  static_assert(memory::SlabArena::kChunkSlabs <= (1u << kBucketBits),
                "bucket ids must fit the packed staging key");

  // ---- staged queries, grouped into runs (stage 2 outputs) --------------
  std::vector<std::uint32_t> keys;         ///< query keys, run-contiguous
  std::vector<std::uint32_t> values;       ///< parallel values (map inserts)
  std::vector<std::uint32_t> seqs;         ///< parallel input positions
  std::vector<QueryRun> runs;
  std::vector<std::uint64_t> run_offsets;  ///< runs.size() + 1 entries

  std::uint64_t staged = 0;   ///< queries emitted by stage 1
  std::uint64_t dropped = 0;  ///< self-loops / unknown-source queries
  std::uint64_t duplicates = 0;  ///< queries removed by dedup

  void clear() {
    keys.clear();
    values.clear();
    seqs.clear();
    runs.clear();
    run_offsets.clear();
    order_.clear();
    weights_.clear();
    staged = dropped = duplicates = 0;
    hi_or_ = 0;
    hi_and_ = ~std::uint64_t{0};
    grouped_runs_ = grouped_keys_ = 0;
    dedup_ = false;
  }

  /// Stage one directed query with an explicit sequence number — the value
  /// that breaks most-recent-wins ties and, for searches, scatters results
  /// back to input positions. Must be strictly increasing in input order
  /// within this staging. `table` must be the source's table; the key is
  /// hashed here — once, never again.
  void push_seq(VertexId src, std::uint32_t key, slabhash::TableRef table,
                std::uint64_t seed, std::uint32_t seq) {
    const std::uint32_t bucket =
        slabhash::bucket_of(key, table.num_buckets, seed);
    const std::uint64_t hi = (static_cast<std::uint64_t>(src) << kBucketBits) |
                             bucket;
    order_.push_back({hi, (static_cast<std::uint64_t>(key) << 32) | seq});
    hi_or_ |= hi;   // digit-skip masks for the radix sort, accumulated free
    hi_and_ &= hi;
    ++staged;
  }

  /// Stage with seq = staged order (the mutation paths; weights_ is indexed
  /// by this dense sequence).
  void push(VertexId src, std::uint32_t key, slabhash::TableRef table,
            std::uint64_t seed) {
    push_seq(src, key, table, seed, static_cast<std::uint32_t>(staged));
  }
  void push_weighted(VertexId src, std::uint32_t key, Weight weight,
                     slabhash::TableRef table, std::uint64_t seed,
                     bool keep_weight) {
    if (keep_weight) weights_.push_back(weight);
    push(src, key, table, seed);
  }

  void reserve(std::size_t queries, bool weighted) {
    order_.reserve(queries);
    if (weighted) weights_.reserve(queries);
  }

  /// Stage 2, pass 1 of the two-pass (count, then place) grouping: sort by
  /// the packed (vertex, bucket) word, order each multi-query group by
  /// (key, sequence), and COUNT the runs and post-dedup keys this staging
  /// will emit — without emitting anything. `dedup` drops all but the
  /// highest-sequence occurrence of equal keys (mutations dedup; searches
  /// keep every query so results can scatter back per input position) and
  /// is remembered for the emit pass. Sets `duplicates`.
  void group_prepare(bool dedup);

  /// Stage 2, pass 2: emit the prepared runs into `dst`'s presized arrays,
  /// runs at [run_base, run_base + grouped_runs()), keys (and values /
  /// seqs, when gathered) at [key_base, key_base + grouped_keys()).
  /// `dst` may be *this (the single-shard / legacy self-emit) or a shared
  /// global staging that several shards emit into concurrently — slices
  /// are disjoint by construction of the prefix-summed bases, so the
  /// parallel writes need no synchronization. `gather_values` copies the
  /// staged weights into `dst.values` run-order; `gather_seqs` keeps the
  /// sequence numbers (searches scatter results through them).
  void group_emit(bool gather_values, bool gather_seqs, BatchStaging& dst,
                  std::uint64_t key_base, std::uint64_t run_base) const;

  /// Pass 2 into this staging's own arrays (resizes them to the prepared
  /// counts and emits at base 0 — the lone-shard and legacy-merge path).
  void emit_self(bool gather_values, bool gather_seqs);

  /// Fused single-pass grouping (sort, then cut + emit in one scan) for
  /// stagings that need no cross-shard assembly — the lone-shard pipeline
  /// path and unit tests. Equivalent output to group_prepare + emit_self,
  /// without paying the counting pass where no global placement needs it.
  void group(bool dedup, bool gather_values, bool gather_seqs);

  /// Runs / keys the emit pass will produce (valid after group_prepare).
  std::uint64_t grouped_runs() const noexcept { return grouped_runs_; }
  std::uint64_t grouped_keys() const noexcept { return grouped_keys_; }

  /// The partition guard: throws std::logic_error if any staged query's
  /// source is not owned by shard `shard` of `num_shards`. Release builds
  /// skip the scan (debug assertion); the staging filters make violations
  /// impossible by construction, and this keeps them impossible.
  void check_partition(std::uint32_t shard, std::uint32_t num_shards) const;

 private:
  std::vector<sort::U128> order_;       ///< staged (hi, lo) sort records
  std::vector<sort::U128> scratch_;     ///< radix ping-pong buffer
  std::vector<std::uint32_t> weights_;  ///< sequence -> weight (stage 1)
  std::uint64_t hi_or_ = 0;             ///< OR of all staged hi words
  std::uint64_t hi_and_ = ~std::uint64_t{0};  ///< AND of all staged hi words
  std::uint64_t grouped_runs_ = 0;      ///< runs counted by group_prepare
  std::uint64_t grouped_keys_ = 0;      ///< post-dedup keys counted
  bool dedup_ = false;                  ///< prepare's dedup, reused by emit
};

/// Per-(vertex, bucket) chain lengths observed by stage 3, in slabs — the
/// low-cost §III maintenance metric. Runs that stayed in their base slab
/// (the overwhelming majority at the paper's load factors) cost one
/// predictable branch: only chains of >= 2 slabs are histogrammed
/// (`hist[min(len, kHistBuckets + 1) - 2]`) and their vertices listed in
/// `candidates` — the only tables targeted rehashing must revisit, since
/// chains never shrink outside rehash/flush/clear. Base-slab-only runs are
/// `runs_observed - sum(hist)`.
struct ChainFeedback {
  static constexpr std::uint32_t kHistBuckets = 8;
  /// Cap on the candidate list (duplicates included — a hub reappears once
  /// per long run). A graph mutated forever without ever calling
  /// rehash_long_chains must not leak: past the cap the list saturates,
  /// recording stops, and the next rehash falls back to the full sweep.
  static constexpr std::size_t kMaxCandidates = std::size_t{1} << 20;
  std::uint64_t runs_observed = 0;
  std::array<std::uint64_t, kHistBuckets> hist{};
  std::vector<VertexId> candidates;
  bool saturated = false;

  /// Records one run whose walk went past the base slab (chain_slabs >= 2).
  void note_long(VertexId src, std::uint32_t chain_slabs) {
    const std::uint32_t bin = chain_slabs - 2 < kHistBuckets - 1
                                  ? chain_slabs - 2
                                  : kHistBuckets - 1;
    ++hist[bin];
    candidates.push_back(src);
  }
  bool empty() const noexcept { return candidates.empty(); }
  void merge_from(ChainFeedback& other) {
    runs_observed += other.runs_observed;
    for (std::uint32_t b = 0; b < kHistBuckets; ++b) hist[b] += other.hist[b];
    saturated = saturated || other.saturated ||
                candidates.size() + other.candidates.size() > kMaxCandidates;
    if (saturated) {
      // Completeness lost: targeted rehash must not run, and there is no
      // point holding (or re-growing) the list until a full sweep resets.
      candidates.clear();
      candidates.shrink_to_fit();
    } else {
      candidates.insert(candidates.end(), other.candidates.begin(),
                        other.candidates.end());
    }
    other.runs_observed = 0;
    other.hist = {};
    other.candidates.clear();
    other.saturated = false;
  }
  void clear() {
    runs_observed = 0;
    hist = {};
    candidates.clear();
    saturated = false;
  }
};

/// One double-buffer half of the pipelined engine: per-shard staging areas
/// plus the global run list stage 3 consumes. The shard-ownership
/// partition — every run of shard s must satisfy
/// shard_of_vertex(run.src, shards) == s — is the invariant that makes
/// per-shard dedup exhaustive and runs bucket-exclusive; finalize() guards
/// it with a debug assertion (validate_partition()).
class ShardedStaging {
 public:
  void resize(std::uint32_t num_shards) {
    if (shards_.size() != num_shards) shards_.resize(num_shards);
  }
  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  BatchStaging& shard(std::uint32_t s) { return shards_[s]; }

  /// Assembles the prepared shards (each past group_prepare) into the one
  /// run list front() exposes. `merge_free` selects two-pass, zero-copy
  /// assembly: per-shard run/key counts prefix-sum into disjoint slices of
  /// the presized global arrays and every shard EMITS ITS OWN OUTPUT
  /// directly into its slice, in parallel — no driver-side copy exists.
  /// `merge_free == false` keeps the PR 3 copying merge (shards self-emit,
  /// then the caller's thread concatenates) as the differential reference.
  /// Returns the bytes the driver copied: always 0 when merge-free. Either
  /// way runs keep shard-major, source-ascending-within-shard order:
  /// deterministic, and consecutive runs still share sources for the apply
  /// counter batching. Debug builds re-validate the shard partition.
  std::uint64_t finalize(bool merge_free, bool gather_values,
                         bool gather_seqs);

  /// The partition guard behind finalize()'s debug assertion, callable
  /// directly (tests, paranoid callers): throws std::logic_error if any
  /// shard staged a vertex it does not own.
  void validate_partition() const;

  /// The staging stage 3 applies: the lone shard, or the merged view.
  const BatchStaging& front() const {
    return shards_.size() == 1 ? shards_[0] : merged_;
  }

  /// Driver-copied bytes of the last finalize() on this buffer (always 0
  /// when merge-free). Written by the staging job, read by the pipeline
  /// driver after the epoch fence — the fence orders the accesses.
  std::uint64_t copied_bytes = 0;

  std::uint64_t total_staged() const;
  std::uint64_t total_dropped() const;
  std::uint64_t total_duplicates() const;

  // ---- stage-window bookkeeping (pipeline overlap accounting) ----------
  /// Execution window of this buffer's last staging pass: recorded once
  /// by the (single) staging job after its shard fan-out joins, read by
  /// the pipeline driver after the epoch fence — the fence's pool
  /// handshake orders the accesses, so plain fields suffice. The driver
  /// intersects it with the apply window to measure the overlap the
  /// double buffer actually achieved.
  void window_note(std::int64_t begin_ns, std::int64_t end_ns) {
    window_begin_ns_ = begin_ns;
    window_end_ns_ = end_ns;
  }
  std::int64_t window_begin_ns() const { return window_begin_ns_; }
  std::int64_t window_end_ns() const { return window_end_ns_; }

 private:
  std::vector<BatchStaging> shards_;
  BatchStaging merged_;
  std::int64_t window_begin_ns_ = 0;
  std::int64_t window_end_ns_ = 0;
};

/// Wall-clock profile of the last pipelined batch (docs/PERF.md). The same
/// struct profiles query batches (edges_exist / edge_weights), where
/// `apply_seconds` is the bulk-search window.
struct BatchPipelineStats {
  std::uint32_t epochs = 0;
  std::uint32_t shards = 0;
  double stage_seconds = 0.0;    ///< summed stage+group+finalize windows
  double apply_seconds = 0.0;    ///< summed apply (or bulk-search) windows
  double overlap_seconds = 0.0;  ///< stage(e+1) ∩ apply(e) window overlap
  /// Bytes the driver copied to assemble shard output, summed over epochs:
  /// 0 under merge-free staging (shards emit straight into the presized
  /// global slices), > 0 only on the legacy copying merge.
  std::uint64_t merge_copy_bytes = 0;
  /// Input items per epoch of the last batch's epoch plan (== the batch
  /// size when it ran as one epoch). With epochs_applied below, failure
  /// paths reconstruct which raw input items never reached the apply stage.
  std::uint64_t epoch_items = 0;
  /// Epochs whose apply stage COMMITTED (completed without abort). Equals
  /// `epochs` after a clean batch.
  std::uint32_t epochs_applied = 0;
  /// Keys applied (new-unique inserted or erased) by the committed epochs —
  /// the running total failure paths report when a later stage dies.
  std::uint64_t applied_total = 0;
};

/// Stage-1 helpers shared by DynGraph's batched paths. `table_of(src)`
/// returns the source's table — creating it for insertions, returning an
/// invalid ref to drop the query for erase/search on unknown sources. The
/// sharded variants filter by vertex ownership, so `table_of` is only ever
/// invoked from the one shard owning `src`: dictionary writes stay
/// exclusive per vertex and need no lock even though shards run in
/// parallel.

template <typename TableFn>
void stage_weighted_edges_shard(std::span<const WeightedEdge> edges,
                                bool undirected, bool keep_weights,
                                std::uint64_t seed, std::uint32_t shard,
                                std::uint32_t num_shards, TableFn&& table_of,
                                BatchStaging& st) {
  st.clear();
  st.reserve(edges.size() * (undirected ? 2 : 1) / num_shards + 16,
             keep_weights);
  if (num_shards == 1) {  // unsharded: keep the filter off the hot loop
    for (const WeightedEdge& e : edges) {
      if (e.src == e.dst) {  // self-loops drop (Algorithm 1 line 3)
        ++st.dropped;
        continue;
      }
      const slabhash::TableRef fwd = table_of(e.src);
      if (fwd.valid()) {
        st.push_weighted(e.src, e.dst, e.weight, fwd, seed, keep_weights);
      } else {
        ++st.dropped;
      }
      if (undirected) {  // mirror staged in place: no doubled temp batch
        const slabhash::TableRef rev = table_of(e.dst);
        if (rev.valid()) {
          st.push_weighted(e.dst, e.src, e.weight, rev, seed, keep_weights);
        } else {
          ++st.dropped;
        }
      }
    }
    return;
  }
  for (const WeightedEdge& e : edges) {
    if (e.src == e.dst) {  // self-loops drop (Algorithm 1 line 3)
      if (shard_of_vertex(e.src, num_shards) == shard) ++st.dropped;
      continue;
    }
    if (shard_of_vertex(e.src, num_shards) == shard) {
      const slabhash::TableRef fwd = table_of(e.src);
      if (fwd.valid()) {
        st.push_weighted(e.src, e.dst, e.weight, fwd, seed, keep_weights);
      } else {
        ++st.dropped;
      }
    }
    if (undirected && shard_of_vertex(e.dst, num_shards) == shard) {
      // Mirror staged in place by the shard owning the reverse source.
      const slabhash::TableRef rev = table_of(e.dst);
      if (rev.valid()) {
        st.push_weighted(e.dst, e.src, e.weight, rev, seed, keep_weights);
      } else {
        ++st.dropped;
      }
    }
  }
}

template <typename TableFn>
void stage_weighted_edges(std::span<const WeightedEdge> edges, bool undirected,
                          bool keep_weights, std::uint64_t seed,
                          TableFn&& table_of, BatchStaging& st) {
  stage_weighted_edges_shard(edges, undirected, keep_weights, seed, 0, 1,
                             std::forward<TableFn>(table_of), st);
}

template <typename TableFn>
void stage_edges_shard(std::span<const Edge> edges, bool undirected,
                       std::uint64_t seed, std::uint32_t shard,
                       std::uint32_t num_shards, TableFn&& table_of,
                       BatchStaging& st) {
  st.clear();
  st.reserve(edges.size() * (undirected ? 2 : 1) / num_shards + 16, false);
  if (num_shards == 1) {  // unsharded fast path
    for (const Edge& e : edges) {
      const slabhash::TableRef fwd = table_of(e.src);
      if (fwd.valid()) {
        st.push(e.src, e.dst, fwd, seed);
      } else {
        ++st.dropped;
      }
      if (undirected) {
        const slabhash::TableRef rev = table_of(e.dst);
        if (rev.valid()) {
          st.push(e.dst, e.src, rev, seed);
        } else {
          ++st.dropped;
        }
      }
    }
    return;
  }
  for (const Edge& e : edges) {
    if (shard_of_vertex(e.src, num_shards) == shard) {
      const slabhash::TableRef fwd = table_of(e.src);
      if (fwd.valid()) {
        st.push(e.src, e.dst, fwd, seed);
      } else {
        ++st.dropped;
      }
    }
    if (undirected && shard_of_vertex(e.dst, num_shards) == shard) {
      const slabhash::TableRef rev = table_of(e.dst);
      if (rev.valid()) {
        st.push(e.dst, e.src, rev, seed);
      } else {
        ++st.dropped;
      }
    }
  }
}

template <typename TableFn>
void stage_edges(std::span<const Edge> edges, bool undirected,
                 std::uint64_t seed, TableFn&& table_of, BatchStaging& st) {
  stage_edges_shard(edges, undirected, seed, 0, 1,
                    std::forward<TableFn>(table_of), st);
}

/// Stage queries that must scatter results back to their input position:
/// the staged sequence number IS the original index of the query (one
/// staged query per input at most; dropped inputs simply have no staged
/// query, so the caller's output stays 0 there). Sharded: each query is
/// staged by the shard owning its source. `seq_base` offsets the staged
/// sequence numbers — epoch-pipelined query batches stage sub-spans, and
/// results must still scatter to GLOBAL input positions.
template <typename TableFn>
void stage_queries_shard(std::span<const Edge> queries, std::uint64_t seed,
                         std::uint32_t shard, std::uint32_t num_shards,
                         TableFn&& table_of, BatchStaging& st,
                         std::uint32_t seq_base = 0) {
  st.clear();
  st.reserve(queries.size() / num_shards + 16, false);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Edge& q = queries[i];
    if (num_shards != 1 && shard_of_vertex(q.src, num_shards) != shard) {
      continue;
    }
    const slabhash::TableRef table = table_of(q.src);
    if (table.valid()) {
      st.push_seq(q.src, q.dst, table, seed,
                  seq_base + static_cast<std::uint32_t>(i));
    } else {
      ++st.dropped;  // unknown source: the caller's output stays 0
    }
  }
}

template <typename TableFn>
void stage_queries(std::span<const Edge> queries, std::uint64_t seed,
                   TableFn&& table_of, BatchStaging& st) {
  stage_queries_shard(queries, seed, 0, 1, std::forward<TableFn>(table_of),
                      st);
}

}  // namespace sg::core
