// Scalar Algorithm-1 mutation oracle (Warp Cooperative Work Sharing,
// §IV-C verbatim): ballot work queue, ffs election, same-source grouping,
// popc success counting — one scalar slab op per key instead of the batch
// engine's staged runs.
//
// This path soaked for several PRs as the batch engine's differential
// reference and now lives here, off the hot path: DynGraph routes to it
// only when GraphConfig::batch_engine is false (tests, tiny-batch latency
// experiments). Undirected batches are applied in BOTH directions in
// place — launch item i maps to edge i/2, mirrored when i is odd — so the
// 2x `mirror_edges` temp vector the old path built is gone entirely.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <span>

#include "src/core/types.hpp"
#include "src/core/vertex_dictionary.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/simt/atomics.hpp"
#include "src/simt/grid.hpp"
#include "src/simt/warp.hpp"

namespace sg::core::oracle {

/// Algorithm 1: batched edge insertion. `acquire(u)` resolves (and lazily
/// creates) u's table; returns the number of NEW unique directed edges.
template <class Policy, class AcquireFn>
std::uint64_t insert_directed(memory::SlabArena& arena, VertexDictionary& dict,
                              std::span<const WeightedEdge> edges,
                              bool undirected, std::uint64_t seed,
                              AcquireFn&& acquire) {
  std::atomic<std::uint64_t> total_added{0};
  const std::uint64_t items =
      edges.size() * (undirected ? std::uint64_t{2} : std::uint64_t{1});

  // Per-lane predicates live in 32-bit masks, which is exactly what the
  // ballot intrinsic produces on the GPU: `pending` IS Algorithm 1's work
  // queue (line 4), bit iteration IS find-first-set (line 5). This keeps
  // the emulation cost proportional to live lanes rather than re-scanning
  // 32 lanes per round (a serialization artifact a real warp never pays).
  simt::launch(items, [&](const simt::WarpId& warp) {
    VertexId src[simt::kWarpSize];
    VertexId dst[simt::kWarpSize];
    Weight weight[simt::kWarpSize];
    std::uint32_t pending = 0;  // ballot(to_insert): the work queue
    for (std::uint32_t m = warp.active; m; m &= m - 1) {
      const int lane = std::countr_zero(m);
      const std::uint64_t item = warp.item(lane);
      const WeightedEdge e = edges[undirected ? item >> 1 : item];
      const bool mirror = undirected && (item & 1);
      src[lane] = mirror ? e.dst : e.src;
      dst[lane] = mirror ? e.src : e.dst;
      weight[lane] = e.weight;
      if (e.src != e.dst) pending |= 1u << lane;  // line 3: no self-edges
    }
    std::uint64_t warp_added = 0;
    while (pending != 0u) {  // line 4
      const int current_lane = simt::ffs(pending) - 1;       // line 5
      const VertexId current_src = src[current_lane];        // line 6 (shuffle)
      const slabhash::TableRef table = acquire(current_src);
      // Lines 7-8: lanes sharing the source form the coalesced group.
      std::uint32_t group = 0;
      std::uint32_t success = 0;
      for (std::uint32_t m = pending; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        if (src[lane] != current_src) continue;
        group |= 1u << lane;
        if (Policy::insert(arena, table, dst[lane], weight[lane], seed,
                           warp.warp)) {
          success |= 1u << lane;
        }
      }
      // Lines 9-10: exact edge counting from the replace() booleans.
      const int added = simt::popc(success);
      if (added > 0) {
        simt::atomic_add(dict.edge_count_word(current_src),
                         static_cast<std::uint32_t>(added));
        warp_added += static_cast<std::uint64_t>(added);
      }
      pending &= ~group;  // lines 11-12
    }
    if (warp_added) total_added.fetch_add(warp_added, std::memory_order_relaxed);
  });
  return total_added.load(std::memory_order_relaxed);
}

/// Algorithm 1 with delete instead of replace (§IV-C2); the returned
/// booleans decrement the exact edge counters. Returns edges removed.
template <class Policy>
std::uint64_t delete_directed(memory::SlabArena& arena, VertexDictionary& dict,
                              std::span<const Edge> edges, bool undirected,
                              std::uint64_t seed) {
  std::atomic<std::uint64_t> total_removed{0};
  const std::uint32_t capacity = dict.capacity();
  const std::uint64_t items =
      edges.size() * (undirected ? std::uint64_t{2} : std::uint64_t{1});

  simt::launch(items, [&](const simt::WarpId& warp) {
    VertexId src[simt::kWarpSize];
    VertexId dst[simt::kWarpSize];
    std::uint32_t pending = 0;
    for (std::uint32_t m = warp.active; m; m &= m - 1) {
      const int lane = std::countr_zero(m);
      const std::uint64_t item = warp.item(lane);
      const Edge e = edges[undirected ? item >> 1 : item];
      const bool mirror = undirected && (item & 1);
      src[lane] = mirror ? e.dst : e.src;
      dst[lane] = mirror ? e.src : e.dst;
      if (src[lane] < capacity && dict.has_table(src[lane])) {
        pending |= 1u << lane;
      }
    }
    std::uint64_t warp_removed = 0;
    while (pending != 0u) {
      const int current_lane = simt::ffs(pending) - 1;
      const VertexId current_src = src[current_lane];
      const slabhash::TableRef table = dict.table(current_src);
      std::uint32_t group = 0;
      std::uint32_t success = 0;
      for (std::uint32_t m = pending; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        if (src[lane] != current_src) continue;
        group |= 1u << lane;
        if (Policy::erase(arena, table, dst[lane], seed)) {
          success |= 1u << lane;
        }
      }
      const int removed = simt::popc(success);
      if (removed > 0) {
        simt::atomic_sub(dict.edge_count_word(current_src),
                         static_cast<std::uint32_t>(removed));
        warp_removed += static_cast<std::uint64_t>(removed);
      }
      pending &= ~group;
    }
    if (warp_removed) {
      total_removed.fetch_add(warp_removed, std::memory_order_relaxed);
    }
  });
  return total_removed.load(std::memory_order_relaxed);
}

}  // namespace sg::core::oracle
