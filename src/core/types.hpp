// Public value types of the dynamic graph API (paper §II-A):
// G = (V, E, W); an edge is <u, v, w> with w standing in for any per-edge
// meta-data. Vertex ids are dense uint32 indices into the vertex dictionary.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sg::core {

using VertexId = std::uint32_t;
using Weight = std::uint32_t;

/// Largest usable vertex id (ids at/above this collide with the slab
/// sentinels kEmptyKey / kTombstoneKey).
inline constexpr VertexId kMaxVertexId = 0xFFFFFFFDu;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// What submit_* does when the scheduler's submission queue is full
/// (GraphConfig::max_pending_submissions / max_pending_edges;
/// docs/ROBUSTNESS.md).
enum class BackpressurePolicy : std::uint8_t {
  /// Block the submitting thread until space frees (optionally bounded by
  /// GraphConfig::submit_timeout_ms, after which the future resolves to
  /// SubmitRejected{kTimeout}). The default: lossless, paces producers.
  kBlock,
  /// Never block: the future resolves immediately to
  /// SubmitRejected{kQueueFull}. For callers with their own retry loop.
  kReject,
  /// Drop the oldest *queued* query (its future resolves to
  /// SubmitRejected{kShed}) to admit the new submission. Mutations are
  /// never shed — losing one would silently fork the graph's history — so
  /// a queue full of mutations rejects the newcomer instead.
  kShedOldestQueries,
};

/// When the write-ahead batch journal (GraphConfig::journal_path;
/// src/persist/journal.hpp, docs/ROBUSTNESS.md "Durability") flushes
/// records to stable storage.
enum class JournalSyncPolicy : std::uint8_t {
  /// Records reach the OS page cache on append but are never fsynced: a
  /// process crash loses nothing, a machine crash may lose the tail. The
  /// default — appends cost one write(2).
  kNone,
  /// fsync after every appended record: a batch's future resolving means
  /// the batch is on stable storage. Orders of magnitude slower per batch;
  /// coalesced scheduler phases amortize it (one record per merged group).
  kEachBatch,
};

/// Construction-time knobs (§III, §IV-A).
struct GraphConfig {
  /// Initial vertex-dictionary capacity. "Selecting a large-enough initial
  /// capacity ... ensures good performance during vertices insertion."
  /// The dictionary grows automatically (pointer-copy) if exceeded.
  std::uint32_t vertex_capacity = 1024;

  /// Target hash-table load factor; the paper uses 0.7 throughout.
  double load_factor = 0.7;

  /// Undirected graphs store each edge in both endpoint adjacency lists;
  /// edge mutations are applied in both directions (§IV-C).
  bool undirected = false;

  /// Seed of the universal hash functions (shared by all tables) and of
  /// anything randomized inside the structure. Fixed => reproducible runs.
  std::uint64_t hash_seed = 0x5EEDF00DULL;

  /// Route batched mutations and queries through the staged batch engine
  /// (stage -> group into per-(vertex, bucket) runs -> bulk slab operations
  /// with software pipelining; src/core/batch_engine.hpp). `false` keeps
  /// the scalar Algorithm-1 warp path, retained as the differential-test
  /// oracle and for latency-sensitive tiny batches.
  bool batch_engine = true;

  /// Shards of the batch engine's stage phase. Shard s owns every vertex u
  /// with u % shards == s, so staging, table creation, and the grouped
  /// (vertex, bucket) runs stay disjoint per shard and the stage pass runs
  /// in parallel with no locks. 0 = auto (one shard per pool worker,
  /// rounded to a power of two, capped); 1 = the serial PR 2 stage.
  std::uint32_t stage_shards = 0;

  /// Double-buffer the batch engine: large batches split into epochs, and
  /// epoch e+1 stages + groups on spare pool threads while epoch e applies
  /// (producer/consumer through simt::ThreadPool::submit). Epochs APPLY in
  /// input order — the pipeline fence — so cross-epoch duplicates resolve
  /// exactly as the unsplit batch would (most recent wins). `false` keeps
  /// the single-buffer stage-then-apply engine.
  bool double_buffer = true;

  /// Input edges per pipelined epoch. 0 = auto (2^15). Batches smaller
  /// than ~1.5 epochs, and any batch on a pool with no workers, run as one
  /// epoch (the degenerate pipeline). Query batches (edges_exist /
  /// edge_weights) pipeline through the same epoch plan.
  std::uint32_t pipeline_epoch_edges = 0;

  /// Merge-free staging: shards count their grouped runs/keys, the counts
  /// prefix-sum into disjoint slices of one presized global run list, and
  /// shards emit directly into their slices in parallel — the apply stage
  /// consumes shard output with zero driver-side copy
  /// (BatchPipelineStats::merge_copy_bytes == 0). `false` restores the
  /// PR 3 concatenating merge, kept as the differential reference.
  bool merge_free = true;

  /// Automatic rehash policy (§III "periodically perform rehashing"): after
  /// every batched mutation the engine inspects the live chain histogram
  /// ChainFeedback accumulated for free by the bulk operations; when more
  /// than 1% of observed runs walked chains of at least this many slabs —
  /// i.e. the p99 chain length crossed the threshold — rehash_long_chains
  /// fires on its own, no user call needed. The histogram resolves chains
  /// of 2..9 slabs (its last bin saturates at ">= 9"), so values below 2
  /// clamp to 2 and values above 9 degrade to 9: a 12-slab threshold
  /// counts the ">= 9 slabs" tail and may therefore fire earlier than
  /// requested (never later). 0 disables the trigger. Queries feed the
  /// histogram too, but only mutation batches may fire (the
  /// phase-concurrent model keeps query phases read-only).
  double auto_rehash_p99_slabs = 4.0;

  /// Tail fraction of the automatic rehash trigger: the policy fires when
  /// MORE than this fraction of observed runs walked chains at/above
  /// auto_rehash_p99_slabs. The default 0.01 is the "p99" in the knob
  /// above; smaller values rehash more eagerly (p99.9 at 0.001), larger
  /// ones tolerate a fatter tail before paying a rebuild. Must be in
  /// (0, 1]; use auto_rehash_p99_slabs = 0 to disable the policy.
  double auto_rehash_tail_frac = 0.01;

  /// Fold chain depths observed by analytics bulk gathers
  /// (gather_neighbors and everything built on it: bulk BFS/CC/TC, the
  /// incremental TC delta pass) into ChainFeedback. Inform-only, exactly
  /// like query phases: gathers enrich the histogram targeted rehashing
  /// consumes but NEVER fire the auto-rehash policy themselves — only
  /// mutation batches may trigger a rebuild. `false` keeps analytics
  /// entirely off the feedback path.
  bool gather_feedback = true;

  /// Scheduled mode (src/core/phase_scheduler.hpp): the async submit_*
  /// entry points (submit_insert / submit_erase / submit_edges_exist /
  /// submit_edge_weights) route through a per-graph phase scheduler that
  /// fences mutation phases from query phases, coalesces small same-kind
  /// submissions into shared engine batches, and runs concurrent query
  /// batches as parallel pool jobs — making the phase-concurrent contract
  /// enforceable when batches arrive from many threads. The conductor
  /// thread starts lazily on the first submit_* call, so graphs that only
  /// use the synchronous API never pay for it. `false` degrades submit_*
  /// to synchronous inline execution (the differential reference; no
  /// cross-thread phase safety). Synchronous calls (insert_edges,
  /// edges_exist, ...) bypass the scheduler either way.
  bool phase_scheduler = true;

  /// Cap on queued (not-yet-admitted) submissions in the phase scheduler.
  /// 0 = unbounded (the pre-admission-control behavior). When the cap is
  /// hit, submit_* applies `backpressure`.
  std::uint32_t max_pending_submissions = 0;

  /// Cap on the total edges/queries carried by queued submissions; a finer
  /// bound than the count above when submission sizes vary. 0 = unbounded.
  /// A single submission larger than the cap is admitted when the queue is
  /// empty (it could never fit otherwise) — the cap bounds queue growth,
  /// not the largest batch.
  std::uint64_t max_pending_edges = 0;

  /// Policy applied by submit_* when either pending cap is hit.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Upper bound, in milliseconds, a kBlock submit_* waits for queue space
  /// before its future resolves to SubmitRejected{kTimeout}. 0 = wait
  /// forever.
  std::uint32_t submit_timeout_ms = 0;

  /// Cap on SlabArena growth in 1 MiB chunks (8192 slabs each); when the
  /// arena is full, batched mutations abort cleanly with PartialBatchError
  /// instead of the process dying in std::bad_alloc (docs/ROBUSTNESS.md).
  /// 0 = the 32 GiB address-space limit.
  std::uint32_t max_arena_chunks = 0;

  /// Always-on misuse checks in SlabArena::free (double free, free of a
  /// base slab) raising memory::ArenaFault instead of release-build UB.
  /// Costs one bitmap load plus a <= 32-entry cache scan per free; disable
  /// only if profiling shows it on a hot path.
  bool arena_checks = true;

  /// Victim threshold of DynGraph::compact (docs/WORKLOADS.md
  /// "Sliding-window streaming"): a dynamic arena chunk whose allocated
  /// fraction is BELOW this value has its surviving slabs migrated into
  /// denser chunks so the emptied chunk can be returned to the OS. Must be
  /// in [0, 1]: 0 releases only chunks already empty (no migration), 1
  /// migrates everything not completely full. The default 0.25 bounds
  /// migration work at a quarter-full worst case while still collapsing
  /// the sparse chunks sliding-window aging leaves behind.
  double compact_occupancy = 0.25;

  /// Fully-free dynamic chunks compact() RETAINS as an allocation reserve
  /// instead of returning to the OS (1 MiB each) — the next epoch's
  /// inserts reuse them without paying chunk allocation. 0 releases every
  /// empty chunk.
  std::uint32_t compact_keep_free_chunks = 1;

  /// Invoked (on the mutating thread, with the batch lock held) after a
  /// batched mutation aborts on arena exhaustion — the hook point for
  /// memory-pressure reactions such as flush_all_tombstones() or an
  /// operator alert. Must not submit or apply mutations on this graph
  /// (deadlock); tombstone flush and rehash entry points are safe.
  std::function<void()> on_pressure;

  // ---- durability (src/persist/, docs/ROBUSTNESS.md "Durability") ------

  /// Path of the write-ahead batch journal. Non-empty = every committed
  /// mutation batch (edge insert/erase, vertex insert/delete) is appended
  /// as a CRC32-checked, sequence-numbered record before the call returns
  /// (before a submit_* future resolves); PartialBatchError aborts journal
  /// their exact committed prefix. An existing file is scanned on attach:
  /// a torn tail is truncated to the last valid record, mid-file
  /// corruption throws persist::CorruptJournal. Requires batch_engine.
  /// Empty (default) = no journal. Recovery: persist::recover().
  std::string journal_path;

  /// Journal flush policy (see JournalSyncPolicy).
  JournalSyncPolicy journal_sync = JournalSyncPolicy::kNone;

  /// Non-empty = the destructor writes a final snapshot of the graph to
  /// this path (write-to-temp + atomic rename; best-effort — destructors
  /// do not throw, and a failed write leaves any previous snapshot file
  /// intact). Pairs with journal_path for restart-without-replay.
  std::string snapshot_on_shutdown;
};

/// The graph's construction-time configuration under its public name.
using SlabGraphConfig = GraphConfig;

/// Aggregated memory accounting for Figure 2 (b) and (c).
struct GraphMemoryStats {
  std::uint64_t live_edges = 0;       ///< live keys over all adjacency tables
  std::uint64_t tombstones = 0;
  std::uint64_t slots = 0;            ///< key capacity over all slabs
  std::uint64_t base_slabs = 0;
  std::uint64_t overflow_slabs = 0;
  std::uint64_t bytes = 0;            ///< slab bytes owned by adjacency lists

  double utilization() const noexcept {
    return slots == 0 ? 0.0
                      : static_cast<double>(live_edges) / static_cast<double>(slots);
  }
  /// Mean bucket-chain length in slabs (the x-axis of Figures 2-3).
  double avg_chain_length() const noexcept {
    return base_slabs == 0 ? 0.0
                           : static_cast<double>(base_slabs + overflow_slabs) /
                                 static_cast<double>(base_slabs);
  }
};

}  // namespace sg::core
