#include "src/core/batch_utils.hpp"

#include <stdexcept>

namespace sg::core {

VertexId max_vertex_id(std::span<const WeightedEdge> edges) {
  VertexId max_id = 0;
  for (const auto& e : edges) {
    if (e.src > max_id) max_id = e.src;
    if (e.dst > max_id) max_id = e.dst;
  }
  return max_id;
}

VertexId max_vertex_id(std::span<const Edge> edges) {
  VertexId max_id = 0;
  for (const auto& e : edges) {
    if (e.src > max_id) max_id = e.src;
    if (e.dst > max_id) max_id = e.dst;
  }
  return max_id;
}

void validate_batch(std::span<const WeightedEdge> edges) {
  if (max_vertex_id(edges) > kMaxVertexId) {
    throw std::invalid_argument("edge batch contains an out-of-range vertex id");
  }
}

void validate_batch(std::span<const Edge> edges) {
  if (max_vertex_id(edges) > kMaxVertexId) {
    throw std::invalid_argument("edge batch contains an out-of-range vertex id");
  }
}

}  // namespace sg::core
