// Method bodies of DynGraph<Policy>; included by dyn_graph_map.cpp and
// dyn_graph_set.cpp which explicitly instantiate the two variants.
#pragma once

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/batch_utils.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/simt/atomics.hpp"
#include "src/simt/grid.hpp"

namespace sg::core {

// --------------------------------------------------------------------------
// EdgeSlabIterator
// --------------------------------------------------------------------------

template <class Policy>
bool EdgeSlabIterator<Policy>::next() {
  if (!table_.valid()) return false;
  if (started_) {
    // Follow the current slab's next pointer; fall through to the next
    // bucket when the chain ends.
    const memory::SlabHandle nxt = simt::atomic_load(
        arena_->resolve(current_).words[slabhash::kNextPtrWord]);
    if (nxt != memory::kNullSlab) {
      current_ = nxt;
      on_base_ = false;
      return true;
    }
  }
  if (next_bucket_ >= table_.num_buckets) return false;
  current_ = table_.bucket_head(next_bucket_++);
  on_base_ = true;
  started_ = true;
  return true;
}

// --------------------------------------------------------------------------
// Construction & vertex-table management
// --------------------------------------------------------------------------

template <class Policy>
DynGraph<Policy>::DynGraph(GraphConfig config)
    : config_(config), dict_(config.vertex_capacity) {
  if (config_.load_factor <= 0.0) {
    throw std::invalid_argument("load_factor must be positive");
  }
}

template <class Policy>
void DynGraph<Policy>::ensure_vertex(VertexId u, std::uint32_t degree_hint) {
  if (u >= dict_.capacity()) dict_.grow(u + 1);
  if (!dict_.has_table(u)) {
    // "If the connectivity information for a vertex is not available, we
    // construct a hash table with a single bucket" (§III-b).
    const std::uint32_t buckets =
        degree_hint == 0
            ? 1
            : slabhash::buckets_for(degree_hint, config_.load_factor,
                                    Policy::kSlotCapacity);
    const memory::SlabHandle base =
        arena_.allocate_contiguous(buckets, slabhash::kEmptyKey);
    dict_.set_table(u, {base, buckets});
    dict_.set_edge_count(u, 0);
  }
  dict_.set_deleted(u, false);
}

template <class Policy>
void DynGraph<Policy>::prepare_batch(std::span<const WeightedEdge> edges) {
  VertexId max_id = 0;
  for (const auto& e : edges) {
    if (e.src > max_id) max_id = e.src;
    if (e.dst > max_id) max_id = e.dst;
  }
  if (max_id > kMaxVertexId) {
    throw std::invalid_argument("edge batch contains an out-of-range vertex id");
  }
  if (max_id >= dict_.capacity()) dict_.grow(max_id + 1);
}

template <class Policy>
slabhash::TableRef DynGraph<Policy>::acquire_table(VertexId u) {
  slabhash::TableRef table = dict_.table_acquire(u);
  if (table.valid()) {
    if (dict_.deleted(u)) dict_.set_deleted(u, false);  // source revival
    return table;
  }
  std::lock_guard<std::mutex> lock(lazy_table_mutex_);
  table = dict_.table_acquire(u);
  if (!table.valid()) {
    const memory::SlabHandle base =
        arena_.allocate_contiguous(1, slabhash::kEmptyKey);
    table = {base, 1};
    dict_.publish_table(u, table);
    dict_.set_edge_count(u, 0);
  }
  dict_.set_deleted(u, false);
  return table;
}

template <class Policy>
void DynGraph<Policy>::insert_vertices(
    std::span<const VertexId> ids, std::span<const std::uint32_t> degree_hints) {
  if (!degree_hints.empty() && degree_hints.size() != ids.size()) {
    throw std::invalid_argument("degree_hints size mismatch");
  }
  VertexId max_id = 0;
  for (VertexId id : ids) {
    if (id > kMaxVertexId) {
      throw std::invalid_argument("vertex id out of range");
    }
    if (id > max_id) max_id = id;
  }
  if (!ids.empty() && max_id >= dict_.capacity()) dict_.grow(max_id + 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ensure_vertex(ids[i], degree_hints.empty() ? 0 : degree_hints[i]);
  }
}

template <class Policy>
void DynGraph<Policy>::bulk_build(std::span<const WeightedEdge> edges) {
  validate_batch(edges);
  // Degrees are known a priori in the bulk-build workload: size each table
  // for its true degree and the configured load factor (§V-B1). Undirected
  // edges count toward both endpoints — no mirrored temp batch is built.
  const VertexId max_id = edges.empty() ? 0 : max_vertex_id(edges);
  if (max_id >= dict_.capacity()) dict_.grow(max_id + 1);
  std::vector<std::uint32_t> degrees(dict_.capacity(), 0);
  std::vector<std::uint8_t> referenced(dict_.capacity(), 0);
  for (const auto& e : edges) {
    if (e.src != e.dst) {
      ++degrees[e.src];
      if (config_.undirected) ++degrees[e.dst];
    }
    referenced[e.src] = 1;
    referenced[e.dst] = 1;
  }
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (referenced[u]) ensure_vertex(u, degrees[u]);
  }
  if (config_.batch_engine) {
    insert_batched(edges);  // stages the mirror direction in place
    return;
  }
  if (config_.undirected) {
    const std::vector<WeightedEdge> mirrored = mirror_edges(edges);
    insert_directed(mirrored);
  } else {
    insert_directed(edges);
  }
}

// --------------------------------------------------------------------------
// Algorithm 1: warp-cooperative batched edge insertion
// --------------------------------------------------------------------------

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_directed(
    std::span<const WeightedEdge> edges) {
  std::atomic<std::uint64_t> total_added{0};
  const std::uint64_t seed = config_.hash_seed;

  // Per-lane predicates live in 32-bit masks, which is exactly what the
  // ballot intrinsic produces on the GPU: `pending` IS Algorithm 1's work
  // queue (line 4), bit iteration IS find-first-set (line 5). This keeps
  // the emulation cost proportional to live lanes rather than re-scanning
  // 32 lanes per round (a serialization artifact a real warp never pays).
  simt::launch(edges.size(), [&](const simt::WarpId& warp) {
    VertexId src[simt::kWarpSize];
    VertexId dst[simt::kWarpSize];
    Weight weight[simt::kWarpSize];
    std::uint32_t pending = 0;  // ballot(to_insert): the work queue
    for (std::uint32_t m = warp.active; m; m &= m - 1) {
      const int lane = std::countr_zero(m);
      const WeightedEdge e = edges[warp.item(lane)];
      src[lane] = e.src;
      dst[lane] = e.dst;
      weight[lane] = e.weight;
      if (e.src != e.dst) pending |= 1u << lane;  // line 3: no self-edges
    }
    std::uint64_t warp_added = 0;
    while (pending != 0u) {  // line 4
      const int current_lane = simt::ffs(pending) - 1;       // line 5
      const VertexId current_src = src[current_lane];        // line 6 (shuffle)
      const slabhash::TableRef table = acquire_table(current_src);
      // Lines 7-8: lanes sharing the source form the coalesced group.
      std::uint32_t group = 0;
      std::uint32_t success = 0;
      for (std::uint32_t m = pending; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        if (src[lane] != current_src) continue;
        group |= 1u << lane;
        if (Policy::insert(arena_, table, dst[lane], weight[lane], seed,
                           warp.warp)) {
          success |= 1u << lane;
        }
      }
      // Lines 9-10: exact edge counting from the replace() booleans.
      const int added = simt::popc(success);
      if (added > 0) {
        simt::atomic_add(dict_.edge_count_word(current_src),
                         static_cast<std::uint32_t>(added));
        warp_added += static_cast<std::uint64_t>(added);
      }
      pending &= ~group;  // lines 11-12
    }
    if (warp_added) total_added.fetch_add(warp_added, std::memory_order_relaxed);
  });
  return total_added.load(std::memory_order_relaxed);
}

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_edges(std::span<const WeightedEdge> edges) {
  if (edges.empty()) return 0;
  prepare_batch(edges);
  if (config_.batch_engine) return insert_batched(edges);
  if (config_.undirected) {
    const std::vector<WeightedEdge> mirrored = mirror_edges(edges);
    return insert_directed(mirrored);
  }
  return insert_directed(edges);
}

// --------------------------------------------------------------------------
// Batch engine (src/core/batch_engine.hpp): stage once, group into
// per-(vertex, bucket) runs, walk each run's chain once with the bulk slab
// operations, pipelining the next run's head slab against the current
// run's SIMD compares.
// --------------------------------------------------------------------------

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_batched(
    std::span<const WeightedEdge> edges) {
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  BatchStaging& staged = staging_;
  // Stage 1 runs serially (it is the pre-pass of the phase), so first-touch
  // table creation can skip the lazy-creation mutex the parallel scalar
  // path needs.
  stage_weighted_edges(
      edges, config_.undirected, Policy::kHasValues, config_.hash_seed,
      [this](VertexId u) {
        if (!dict_.has_table(u)) {
          const memory::SlabHandle base =
              arena_.allocate_contiguous(1, slabhash::kEmptyKey);
          dict_.set_table(u, {base, 1});
          dict_.set_edge_count(u, 0);
        }
        if (dict_.deleted(u)) dict_.set_deleted(u, false);  // source revival
        return dict_.table(u);
      },
      staged);
  staged.group(/*dedup=*/true, /*gather_values=*/Policy::kHasValues,
               /*gather_seqs=*/false);
  return apply_mutation_runs(staged, /*erase=*/false);
}

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_batched(std::span<const Edge> edges) {
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  BatchStaging& staged = staging_;
  const std::uint32_t capacity = dict_.capacity();
  stage_edges(
      edges, config_.undirected, config_.hash_seed,
      [this, capacity](VertexId u) {
        return u < capacity && dict_.has_table(u) ? dict_.table(u)
                                                  : slabhash::TableRef{};
      },
      staged);
  staged.group(/*dedup=*/true, /*gather_values=*/false, /*gather_seqs=*/false);
  return apply_mutation_runs(staged, /*erase=*/true);
}

template <class Policy>
std::uint64_t DynGraph<Policy>::apply_mutation_runs(const BatchStaging& staged,
                                                    bool erase) {
  if (staged.runs.empty()) return 0;
  std::atomic<std::uint64_t> total{0};
  simt::launch_runs(staged.run_offsets, [&](std::uint64_t first,
                                            std::uint64_t last) {
    std::uint64_t chunk_total = 0;
    VertexId counter_src = 0;
    std::uint32_t counter_delta = 0;
    bool counting = false;
    // Runs are sorted by source, so one atomic counter update covers every
    // consecutive run of the same vertex.
    const auto flush_counter = [&] {
      if (counting && counter_delta != 0) {
        if (erase) {
          simt::atomic_sub(dict_.edge_count_word(counter_src), counter_delta);
        } else {
          simt::atomic_add(dict_.edge_count_word(counter_src), counter_delta);
        }
        chunk_total += counter_delta;
      }
      counter_delta = 0;
    };
    simt::pipeline(
        last - first, kRunPrefetchDepth,
        [&](std::uint64_t i) {
          const QueryRun& run = staged.runs[first + i];
          simt::prefetch(
              &arena_.resolve(dict_.table(run.src).bucket_head(run.bucket)));
        },
        [&](std::uint64_t i) {
          const QueryRun& run = staged.runs[first + i];
          if (!counting || run.src != counter_src) {
            flush_counter();
            counter_src = run.src;
            counting = true;
          }
          const std::uint64_t begin = staged.run_offsets[first + i];
          const std::uint64_t end = staged.run_offsets[first + i + 1];
          const auto count = static_cast<std::uint32_t>(end - begin);
          const slabhash::TableRef table = dict_.table(run.src);
          counter_delta +=
              erase ? Policy::bulk_erase(arena_, table, run.bucket,
                                         staged.keys.data() + begin, count)
                    : Policy::bulk_insert(
                          arena_, table, run.bucket,
                          staged.keys.data() + begin,
                          staged.values.empty() ? nullptr
                                                : staged.values.data() + begin,
                          count, run.src);
        });
    flush_counter();
    if (chunk_total != 0) {
      total.fetch_add(chunk_total, std::memory_order_relaxed);
    }
  });
  return total.load(std::memory_order_relaxed);
}

template <class Policy>
void DynGraph<Policy>::exist_batched(std::span<const Edge> queries,
                                     std::uint8_t* out) const {
  std::fill(out, out + queries.size(), std::uint8_t{0});
  BatchStaging staged;
  const std::uint32_t capacity = dict_.capacity();
  stage_queries(
      queries, config_.hash_seed,
      [this, capacity](VertexId u) {
        return u < capacity && dict_.has_table(u) ? dict_.table(u)
                                                  : slabhash::TableRef{};
      },
      staged);
  staged.group(/*dedup=*/false, /*gather_values=*/false, /*gather_seqs=*/true);
  if (staged.runs.empty()) return;
  std::vector<std::uint8_t> found(staged.keys.size());
  simt::launch_runs(staged.run_offsets, [&](std::uint64_t first,
                                            std::uint64_t last) {
    simt::pipeline(
        last - first, kRunPrefetchDepth,
        [&](std::uint64_t i) {
          const QueryRun& run = staged.runs[first + i];
          simt::prefetch(
              &arena_.resolve(dict_.table(run.src).bucket_head(run.bucket)));
        },
        [&](std::uint64_t i) {
          const QueryRun& run = staged.runs[first + i];
          const std::uint64_t begin = staged.run_offsets[first + i];
          const std::uint64_t end = staged.run_offsets[first + i + 1];
          Policy::bulk_contains(arena_, dict_.table(run.src), run.bucket,
                                staged.keys.data() + begin,
                                static_cast<std::uint32_t>(end - begin),
                                found.data() + begin);
          for (std::uint64_t q = begin; q < end; ++q) {
            out[staged.seqs[q]] = found[q];  // scatter to the input position
          }
        });
  });
}

// --------------------------------------------------------------------------
// Batched edge deletion (§IV-C2): Algorithm 1 with delete instead of
// replace; the returned boolean decrements the exact edge counters.
// --------------------------------------------------------------------------

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_directed(std::span<const Edge> edges) {
  std::atomic<std::uint64_t> total_removed{0};
  const std::uint64_t seed = config_.hash_seed;
  const std::uint32_t capacity = dict_.capacity();

  simt::launch(edges.size(), [&](const simt::WarpId& warp) {
    VertexId src[simt::kWarpSize];
    VertexId dst[simt::kWarpSize];
    std::uint32_t pending = 0;
    for (std::uint32_t m = warp.active; m; m &= m - 1) {
      const int lane = std::countr_zero(m);
      const Edge e = edges[warp.item(lane)];
      src[lane] = e.src;
      dst[lane] = e.dst;
      if (e.src < capacity && dict_.has_table(e.src)) pending |= 1u << lane;
    }
    std::uint64_t warp_removed = 0;
    while (pending != 0u) {
      const int current_lane = simt::ffs(pending) - 1;
      const VertexId current_src = src[current_lane];
      const slabhash::TableRef table = dict_.table(current_src);
      std::uint32_t group = 0;
      std::uint32_t success = 0;
      for (std::uint32_t m = pending; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        if (src[lane] != current_src) continue;
        group |= 1u << lane;
        if (Policy::erase(arena_, table, dst[lane], seed)) {
          success |= 1u << lane;
        }
      }
      const int removed = simt::popc(success);
      if (removed > 0) {
        simt::atomic_sub(dict_.edge_count_word(current_src),
                         static_cast<std::uint32_t>(removed));
        warp_removed += static_cast<std::uint64_t>(removed);
      }
      pending &= ~group;
    }
    if (warp_removed) {
      total_removed.fetch_add(warp_removed, std::memory_order_relaxed);
    }
  });
  return total_removed.load(std::memory_order_relaxed);
}

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_edges(std::span<const Edge> edges) {
  if (edges.empty()) return 0;
  validate_batch(edges);
  if (config_.batch_engine) return delete_batched(edges);
  if (config_.undirected) {
    const std::vector<Edge> mirrored = mirror_edges(edges);
    return delete_directed(mirrored);
  }
  return delete_directed(edges);
}

// --------------------------------------------------------------------------
// Algorithm 2: vertex deletion
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::delete_vertices(std::span<const VertexId> ids) {
  if (ids.empty()) return;
  const std::uint64_t seed = config_.hash_seed;
  const std::uint32_t count = static_cast<std::uint32_t>(ids.size());

  // Serial pre-pass: mark the batch. The `doomed` bitmap (this batch only)
  // drives the cleanup so that stale liveness flags from earlier deletions
  // can never widen it; the persistent flags feed vertex_live().
  std::vector<std::uint8_t> doomed(dict_.capacity(), 0);
  for (VertexId v : ids) {
    if (v < dict_.capacity()) {
      doomed[v] = 1;
      dict_.set_deleted(v, true);
    }
  }

  // Phase 1 — remove the deleted vertices from *other* adjacency lists.
  if (config_.undirected) {
    // Undirected: a vertex's own adjacency list names exactly the tables
    // that reference it (Algorithm 2 lines 11-17). One warp per vertex,
    // claimed from an atomic work queue (lines 2-9) for load balance.
    std::uint32_t queue = 0;
    // One warp per vertex, capped so small batches do not oversubscribe.
    const std::uint32_t num_warps = count < 256u ? count : 256u;
    simt::launch_warps(num_warps, [&](const simt::WarpId&) {
      for (;;) {
        // Lines 3-6: lane 0 claims a queue slot; broadcast to the warp.
        const std::uint32_t queue_id = simt::atomic_add(queue, 1u);
        if (queue_id >= count) return;  // line 7-8
        const VertexId warp_vertex = ids[queue_id];  // line 10
        if (warp_vertex >= dict_.capacity() || !dict_.has_table(warp_vertex)) {
          continue;
        }
        // Lines 11-17: iterate the vertex's slabs; every lane takes one
        // destination and deletes warp_vertex from that neighbour's table.
        auto it = edge_iterator(warp_vertex);
        while (it.next()) {
          for (int lane = 0; lane < it.slots(); ++lane) {
            const std::uint32_t dst = it.key(lane);
            // Empties exist only at the tail of a slab's used region, so
            // the first EMPTY ends this slab (the §IV-C2 invariant).
            if (dst == slabhash::kEmptyKey) break;
            if (dst == slabhash::kTombstoneKey) continue;
            if (dst >= dict_.capacity() || doomed[dst] ||
                !dict_.has_table(dst)) {
              continue;  // neighbour is being deleted too: its table dies anyway
            }
            if (Policy::erase(arena_, dict_.table(dst), warp_vertex, seed)) {
              simt::atomic_sub(dict_.edge_count_word(dst), 1u);
            }
          }
        }
        // Lines 18-22, same warp pass: free this vertex's dynamically
        // allocated slabs (base slabs stay), zero its edge count. Safe here
        // because no other warp touches a doomed vertex's table.
        Policy::clear(arena_, dict_.table(warp_vertex));
        dict_.set_edge_count(warp_vertex, 0);
      }
    });
    return;  // cleanup already done per-warp above
  } else {
    // Directed: incoming edges are unknown, so run the paper's follow-up
    // sweep — "a follow-up lookup and delete all of the deleted vertices in
    // all of the hash tables" — over every live vertex.
    std::uint32_t queue = 0;
    const std::uint32_t capacity = dict_.capacity();
    simt::launch_warps(256, [&](const simt::WarpId&) {
      for (;;) {
        const std::uint32_t u = simt::atomic_add(queue, 1u);
        if (u >= capacity) return;
        if (!dict_.has_table(u) || doomed[u]) continue;
        const slabhash::TableRef table = dict_.table(u);
        auto it = EdgeSlabIterator<Policy>(arena_, table);
        while (it.next()) {
          for (int lane = 0; lane < it.slots(); ++lane) {
            const std::uint32_t dst = it.key(lane);
            if (dst == slabhash::kEmptyKey) break;  // empties only at tail
            if (dst == slabhash::kTombstoneKey) continue;
            if (dst < capacity && doomed[dst]) {
              if (Policy::erase(arena_, table, dst, seed)) {
                simt::atomic_sub(dict_.edge_count_word(u), 1u);
              }
            }
          }
        }
      }
    });
  }

  // Phase 2 — dismantle the deleted vertices' own tables: free dynamically
  // allocated slabs (lines 18-20), keep base slabs ("statically allocated
  // memory is not reclaimed"), zero the edge count (line 22).
  std::uint32_t queue2 = 0;
  simt::launch_warps(64, [&](const simt::WarpId&) {
    for (;;) {
      const std::uint32_t queue_id = simt::atomic_add(queue2, 1u);
      if (queue_id >= count) return;
      const VertexId v = ids[queue_id];
      if (v >= dict_.capacity() || !dict_.has_table(v)) continue;
      Policy::clear(arena_, dict_.table(v));
      dict_.set_edge_count(v, 0);
    }
  });
}

// --------------------------------------------------------------------------
// Queries
// --------------------------------------------------------------------------

template <class Policy>
bool DynGraph<Policy>::edge_exists(VertexId u, VertexId v) const {
  // No liveness flag checks: Algorithm 2's cleanup guarantees deleted
  // vertices appear in no adjacency list and own an empty table, so the
  // table contents alone answer correctly ("no edge query involving u may
  // have a false positive result").
  if (u >= dict_.capacity() || !dict_.has_table(u)) return false;
  return Policy::contains(arena_, dict_.table(u), v, config_.hash_seed);
}

template <class Policy>
void DynGraph<Policy>::edges_exist(std::span<const Edge> queries,
                                   std::uint8_t* out) const {
  if (queries.empty()) return;
  if (config_.batch_engine) {
    exist_batched(queries, out);  // batched map_search through the engine
    return;
  }
  simt::launch(queries.size(), [&](const simt::WarpId& warp) {
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!warp.lane_active(lane)) continue;
      const std::uint64_t i = warp.item(lane);
      out[i] = edge_exists(queries[i].src, queries[i].dst) ? 1 : 0;
    }
  });
}

template <class Policy>
slabhash::MapFindResult DynGraph<Policy>::edge_weight(VertexId u, VertexId v) const
    requires Policy::kHasValues {
  if (u >= dict_.capacity() || !dict_.has_table(u)) return {};
  return slabhash::map_search(arena_, dict_.table(u), v, config_.hash_seed);
}

template <class Policy>
void DynGraph<Policy>::for_each_neighbor(
    VertexId u, const std::function<void(VertexId, Weight)>& fn) const {
  if (u >= dict_.capacity() || !dict_.has_table(u)) return;
  Policy::for_each(arena_, dict_.table(u), fn);
}

// --------------------------------------------------------------------------
// Maintenance & accounting
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::flush_all_tombstones() {
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (dict_.has_table(u)) Policy::flush_tombstones(arena_, dict_.table(u));
  }
}

template <class Policy>
std::uint32_t DynGraph<Policy>::rehash_long_chains(double max_chain_slabs) {
  if (max_chain_slabs <= 0.0) {
    throw std::invalid_argument("max_chain_slabs must be positive");
  }
  std::uint32_t rehashed = 0;
  const std::uint64_t seed = config_.hash_seed;
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (!dict_.has_table(u)) continue;
    const slabhash::TableRef old_table = dict_.table(u);
    const std::uint32_t live = dict_.edge_count(u);
    const double expected_chain =
        static_cast<double>(live) /
        (static_cast<double>(old_table.num_buckets) * Policy::kSlotCapacity);
    if (expected_chain <= max_chain_slabs) continue;
    // Build a right-sized table and move the live keys over; the move also
    // sheds tombstones. Only adjacency-list contents move — the dictionary
    // entry is a pointer swap, as in §IV-A1.
    const std::uint32_t buckets = slabhash::buckets_for(
        live, config_.load_factor, Policy::kSlotCapacity);
    slabhash::TableRef fresh{
        arena_.allocate_contiguous(buckets, slabhash::kEmptyKey), buckets};
    Policy::for_each(arena_, old_table,
                     [&](VertexId dst, Weight w) {
                       Policy::insert(arena_, fresh, dst, w, seed, u);
                     });
    Policy::clear(arena_, old_table);  // frees the old overflow chain
    dict_.set_table(u, fresh);
    ++rehashed;
  }
  return rehashed;
}

template <class Policy>
GraphMemoryStats DynGraph<Policy>::memory_stats() const {
  GraphMemoryStats stats;
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (!dict_.has_table(u)) continue;
    const slabhash::TableOccupancy occ = Policy::occupancy(arena_, dict_.table(u));
    stats.live_edges += occ.live_keys;
    stats.tombstones += occ.tombstones;
    stats.slots += occ.slots;
    stats.base_slabs += occ.base_slabs;
    stats.overflow_slabs += occ.overflow_slabs;
  }
  stats.bytes = (stats.base_slabs + stats.overflow_slabs) * sizeof(memory::Slab);
  return stats;
}

}  // namespace sg::core
