// Method bodies of DynGraph<Policy>; included by dyn_graph_map.cpp and
// dyn_graph_set.cpp which explicitly instantiate the two variants.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "src/core/batch_engine.hpp"
#include "src/core/batch_utils.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/core/errors.hpp"
#include "src/core/scalar_oracle.hpp"
#include "src/persist/journal.hpp"
#include "src/persist/snapshot.hpp"
#include "src/simt/atomics.hpp"
#include "src/simt/grid.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/fault_injection.hpp"

namespace sg::core {

inline std::uint64_t edge_key(VertexId src, VertexId dst);

// --------------------------------------------------------------------------
// EdgeSlabIterator
// --------------------------------------------------------------------------

template <class Policy>
bool EdgeSlabIterator<Policy>::next() {
  if (!table_.valid()) return false;
  if (started_) {
    // Follow the current slab's next pointer; fall through to the next
    // bucket when the chain ends.
    const memory::SlabHandle nxt = simt::atomic_load(
        arena_->resolve(current_).words[slabhash::kNextPtrWord]);
    if (nxt != memory::kNullSlab) {
      current_ = nxt;
      on_base_ = false;
      return true;
    }
  }
  if (next_bucket_ >= table_.num_buckets) return false;
  current_ = table_.bucket_head(next_bucket_++);
  on_base_ = true;
  started_ = true;
  return true;
}

// --------------------------------------------------------------------------
// Construction & vertex-table management
// --------------------------------------------------------------------------

template <class Policy>
DynGraph<Policy>::DynGraph(GraphConfig config)
    : config_(config), dict_(config.vertex_capacity) {
  if (config_.load_factor <= 0.0) {
    throw std::invalid_argument("load_factor must be positive");
  }
  if (config_.auto_rehash_tail_frac <= 0.0 ||
      config_.auto_rehash_tail_frac > 1.0) {
    throw std::invalid_argument("auto_rehash_tail_frac must be in (0, 1]");
  }
  if (config_.compact_occupancy < 0.0 || config_.compact_occupancy > 1.0) {
    throw std::invalid_argument("compact_occupancy must be in [0, 1]");
  }
  if (config_.max_arena_chunks != 0) {
    arena_.set_chunk_limit(config_.max_arena_chunks);
  }
  arena_.set_checks(config_.arena_checks);
  if (!config_.journal_path.empty()) {
    attach_journal(config_.journal_path);
  }
}

template <class Policy>
DynGraph<Policy>::~DynGraph() {
  // The scheduler dies first (it is also the LAST member, but the shutdown
  // snapshot below must run after it): queued submissions reject with
  // SubmitRejected{kShutdown} and the conductor joins, so no Ops callback
  // can mutate during the snapshot write or member teardown.
  scheduler_ptr_.store(nullptr, std::memory_order_release);
  scheduler_.reset();
  if (!config_.snapshot_on_shutdown.empty()) {
    try {
      persist::snapshot(*this, config_.snapshot_on_shutdown);
    } catch (...) {
      // Best-effort by contract (GraphConfig::snapshot_on_shutdown):
      // destructors must not throw, and write-to-temp + rename means a
      // failed write leaves any previous snapshot intact.
    }
  }
}

// --------------------------------------------------------------------------
// Durability hooks (src/persist/): the write-ahead journal records every
// committed mutation batch; snapshots ride the analytics phase machinery.
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::attach_journal(const std::string& path) {
  if (!config_.batch_engine) {
    throw std::invalid_argument(
        "journal_path requires batch_engine: the scalar oracle path does "
        "not journal");
  }
  if (journal_) {
    throw std::logic_error("a journal is already attached to this graph");
  }
  journal_ = std::make_unique<persist::Journal>(
      path, config_.journal_sync, journal_seq());
  advance_journal_seq(journal_->last_seq());
  config_.journal_path = path;
}

template <class Policy>
std::uint64_t DynGraph<Policy>::journal_truncated_on_attach() const noexcept {
  return journal_ ? journal_->truncated_on_open() : 0;
}

template <class Policy>
void DynGraph<Policy>::ensure_journal_usable() const {
  if (journal_) journal_->ensure_usable();
}

template <class Policy>
void DynGraph<Policy>::journal_insert(std::span<const WeightedEdge> edges) {
  if (!journal_) return;
  advance_journal_seq(journal_->append_insert(edges));
}

template <class Policy>
void DynGraph<Policy>::journal_erase(std::span<const Edge> edges) {
  if (!journal_) return;
  advance_journal_seq(journal_->append_erase(edges));
}

template <class Policy>
void DynGraph<Policy>::journal_insert_committed(
    std::span<const WeightedEdge> edges,
    const std::vector<Edge>& unapplied) noexcept {
  if (!journal_) return;
  try {
    std::unordered_set<std::uint64_t> skip;
    skip.reserve(unapplied.size());
    for (const Edge& e : unapplied) skip.insert(edge_key(e.src, e.dst));
    std::vector<WeightedEdge> committed;
    committed.reserve(edges.size());
    for (const WeightedEdge& e : edges) {
      if (!skip.contains(edge_key(e.src, e.dst))) committed.push_back(e);
    }
    journal_insert(committed);
  } catch (...) {
    // Best-effort (see the declaration): the journal poisoned itself, and
    // the caller's PartialBatchError already reports the abort.
  }
}

template <class Policy>
void DynGraph<Policy>::journal_erase_committed(
    std::span<const Edge> edges, const std::vector<Edge>& unapplied) noexcept {
  if (!journal_) return;
  try {
    std::unordered_set<std::uint64_t> skip;
    skip.reserve(unapplied.size());
    for (const Edge& e : unapplied) skip.insert(edge_key(e.src, e.dst));
    std::vector<Edge> committed;
    committed.reserve(edges.size());
    for (const Edge& e : edges) {
      if (!skip.contains(edge_key(e.src, e.dst))) committed.push_back(e);
    }
    journal_erase(committed);
  } catch (...) {
    // Best-effort, as above.
  }
}

template <class Policy>
std::future<void> DynGraph<Policy>::submit_snapshot(std::string path) {
  if (!config_.phase_scheduler) {
    // Inline reference mode: write synchronously (same future surface).
    std::promise<void> done;
    std::future<void> f = done.get_future();
    try {
      persist::snapshot(*this, path);
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return f;
  }
  return ensure_scheduler().submit_snapshot(
      [this, path = std::move(path)] { persist::snapshot(*this, path); });
}

template <class Policy>
void DynGraph<Policy>::ensure_vertex(VertexId u, std::uint32_t degree_hint) {
  if (u >= dict_.capacity()) dict_.grow(u + 1);
  if (!dict_.has_table(u)) {
    // "If the connectivity information for a vertex is not available, we
    // construct a hash table with a single bucket" (§III-b).
    const std::uint32_t buckets =
        degree_hint == 0
            ? 1
            : slabhash::buckets_for(degree_hint, config_.load_factor,
                                    Policy::kSlotCapacity);
    const memory::SlabHandle base =
        arena_.allocate_contiguous(buckets, slabhash::kEmptyKey);
    dict_.set_table(u, {base, buckets});
    dict_.set_edge_count(u, 0);
  }
  dict_.set_deleted(u, false);
}

template <class Policy>
void DynGraph<Policy>::prepare_batch(std::span<const WeightedEdge> edges) {
  VertexId max_id = 0;
  for (const auto& e : edges) {
    if (e.src > max_id) max_id = e.src;
    if (e.dst > max_id) max_id = e.dst;
  }
  if (max_id > kMaxVertexId) {
    throw std::invalid_argument("edge batch contains an out-of-range vertex id");
  }
  if (max_id >= dict_.capacity()) dict_.grow(max_id + 1);
}

template <class Policy>
slabhash::TableRef DynGraph<Policy>::acquire_table(VertexId u) {
  slabhash::TableRef table = dict_.table_acquire(u);
  if (table.valid()) {
    if (dict_.deleted(u)) dict_.set_deleted(u, false);  // source revival
    return table;
  }
  std::lock_guard<std::mutex> lock(lazy_table_mutex_);
  table = dict_.table_acquire(u);
  if (!table.valid()) {
    const memory::SlabHandle base =
        arena_.allocate_contiguous(1, slabhash::kEmptyKey);
    table = {base, 1};
    dict_.publish_table(u, table);
    dict_.set_edge_count(u, 0);
  }
  dict_.set_deleted(u, false);
  return table;
}

template <class Policy>
void DynGraph<Policy>::insert_vertices(
    std::span<const VertexId> ids, std::span<const std::uint32_t> degree_hints) {
  if (!degree_hints.empty() && degree_hints.size() != ids.size()) {
    throw std::invalid_argument("degree_hints size mismatch");
  }
  if (ids.empty()) return;
  ensure_journal_usable();
  VertexId max_id = 0;
  for (VertexId id : ids) {
    if (id > kMaxVertexId) {
      throw std::invalid_argument("vertex id out of range");
    }
    if (id > max_id) max_id = id;
  }
  if (max_id >= dict_.capacity()) dict_.grow(max_id + 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ensure_vertex(ids[i], degree_hints.empty() ? 0 : degree_hints[i]);
  }
  if (journal_) {
    advance_journal_seq(journal_->append_insert_vertices(ids, degree_hints));
  }
}

template <class Policy>
void DynGraph<Policy>::bulk_build(std::span<const WeightedEdge> edges) {
  ensure_journal_usable();
  validate_batch(edges);
  // Degrees are known a priori in the bulk-build workload: size each table
  // for its true degree and the configured load factor (§V-B1). Undirected
  // edges count toward both endpoints — no mirrored temp batch is built.
  const VertexId max_id = edges.empty() ? 0 : max_vertex_id(edges);
  if (max_id >= dict_.capacity()) dict_.grow(max_id + 1);
  std::vector<std::uint32_t> degrees(dict_.capacity(), 0);
  std::vector<std::uint8_t> referenced(dict_.capacity(), 0);
  for (const auto& e : edges) {
    if (e.src != e.dst) {
      ++degrees[e.src];
      if (config_.undirected) ++degrees[e.dst];
    }
    referenced[e.src] = 1;
    referenced[e.dst] = 1;
  }
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (referenced[u]) ensure_vertex(u, degrees[u]);
  }
  if (journal_) {
    // Journal the vertex pre-pass so replay reproduces vertex_live for
    // dst-only vertices of a directed build (the edge record alone would
    // only revive sources) — and re-creates the right-sized tables.
    std::vector<VertexId> ref_ids;
    std::vector<std::uint32_t> hints;
    for (VertexId u = 0; u < dict_.capacity(); ++u) {
      if (referenced[u]) {
        ref_ids.push_back(u);
        hints.push_back(degrees[u]);
      }
    }
    advance_journal_seq(journal_->append_insert_vertices(ref_ids, hints));
  }
  if (config_.batch_engine) {
    insert_batched(edges);  // stages the mirror direction in place
    return;
  }
  insert_directed(edges);  // oracle path: mirrors in place too
}

// --------------------------------------------------------------------------
// Algorithm 1: warp-cooperative batched edge insertion. The scalar body
// lives in src/core/scalar_oracle.hpp (test-only differential reference;
// the batch engine is the production path).
// --------------------------------------------------------------------------

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_directed(
    std::span<const WeightedEdge> edges) {
  return oracle::insert_directed<Policy>(
      arena_, dict_, edges, config_.undirected, config_.hash_seed,
      [this](VertexId u) { return acquire_table(u); });
}

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_edges(std::span<const WeightedEdge> edges) {
  if (edges.empty()) return 0;
  ensure_journal_usable();
  prepare_batch(edges);
  if (config_.batch_engine) return insert_batched(edges);
  return insert_directed(edges);
}

// --------------------------------------------------------------------------
// Batch engine (src/core/batch_engine.hpp): stage sharded, group into
// per-(vertex, bucket) runs, walk each run's chain once with the bulk slab
// operations — large batches split into double-buffered epochs whose
// staging overlaps the previous epoch's apply on the shared thread pool.
// --------------------------------------------------------------------------

template <class Policy>
std::uint32_t DynGraph<Policy>::stage_shard_count(std::uint64_t items) const {
  std::uint32_t shards = config_.stage_shards;
  if (shards == 0) {
    const unsigned workers = simt::ThreadPool::instance().size();
    shards = workers > 1 ? std::bit_ceil(workers) : 1u;
    // Auto mode: each shard re-scans the whole input, so don't slice a
    // batch thinner than ~16K staged queries per shard.
    constexpr std::uint64_t kMinItemsPerShard = 16384;
    while (shards > 1 && items / shards < kMinItemsPerShard) shards /= 2;
  } else {
    shards = std::bit_ceil(shards);
  }
  return shards > kMaxStageShards ? kMaxStageShards : shards;
}

/// Packs a directed pair for the unapplied-set membership tests below.
inline std::uint64_t edge_key(VertexId src, VertexId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

/// Builds a PartialBatchError's unapplied list from a PipelineAbort: the
/// raw input items of the failing epoch whose staged pair (or its mirror,
/// when undirected) went unapplied — reported in input order and input
/// orientation, deduplicated — followed by every raw input item of the
/// epochs that never reached the apply stage.
template <typename EdgeT>
std::vector<Edge> unapplied_from_abort(std::span<const EdgeT> edges,
                                       bool undirected,
                                       const PipelineAbort& abort) {
  std::unordered_set<std::uint64_t> missed;
  missed.reserve(abort.epoch.unapplied.size());
  for (const Edge& e : abort.epoch.unapplied) {
    missed.insert(edge_key(e.src, e.dst));
  }
  std::vector<Edge> unapplied;
  std::unordered_set<std::uint64_t> reported;
  for (std::uint64_t i = abort.epoch_begin_item;
       i < abort.epoch_end_item && i < edges.size(); ++i) {
    const VertexId src = edges[i].src;
    const VertexId dst = edges[i].dst;
    if (src == dst) continue;  // self-loops are dropped, never staged
    const bool hit = missed.count(edge_key(src, dst)) != 0 ||
                     (undirected && missed.count(edge_key(dst, src)) != 0);
    if (hit && reported.insert(edge_key(src, dst)).second) {
      unapplied.push_back(Edge{src, dst});
    }
  }
  for (std::uint64_t i = abort.epoch_end_item; i < edges.size(); ++i) {
    unapplied.push_back(Edge{edges[i].src, edges[i].dst});
  }
  return unapplied;
}

/// Fallback unapplied list for failures carrying no per-pair detail (a
/// staging job died): every raw input item from the first epoch that did
/// not commit its apply stage.
template <typename EdgeT>
std::vector<Edge> unapplied_from_epoch(std::span<const EdgeT> edges,
                                       const BatchPipelineStats& stats) {
  std::uint64_t begin =
      static_cast<std::uint64_t>(stats.epochs_applied) * stats.epoch_items;
  if (begin > edges.size()) begin = edges.size();
  std::vector<Edge> unapplied;
  unapplied.reserve(edges.size() - begin);
  for (std::uint64_t i = begin; i < edges.size(); ++i) {
    unapplied.push_back(Edge{edges[i].src, edges[i].dst});
  }
  return unapplied;
}

/// Steady-clock nanoseconds (the pipeline window timestamps).
inline std::int64_t pipeline_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <class Policy>
template <typename StageEpochFn, typename ApplyFn>
std::uint64_t DynGraph<Policy>::run_epoch_pipeline(
    std::uint64_t num_items, std::uint32_t stage_items_factor,
    ShardedStaging* cur, ShardedStaging* nxt, BatchPipelineStats& stats,
    StageEpochFn&& stage_epoch, ApplyFn&& apply) const {
  stats = {};
  if (num_items == 0) return 0;
  auto& pool = simt::ThreadPool::instance();

  // Epoch plan: auto mode pipelines only when spare threads exist and the
  // batch is large enough to amortize the split; an explicit epoch size
  // always splits (tests drive the degenerate inline pipeline through it).
  std::uint64_t epoch_items;
  bool split;
  if (config_.pipeline_epoch_edges != 0) {
    epoch_items = config_.pipeline_epoch_edges;
    split = config_.double_buffer && num_items > epoch_items;
  } else {
    epoch_items = std::uint64_t{1} << 15;
    split = config_.double_buffer && pool.size() > 0 &&
            num_items > epoch_items + epoch_items / 2;
  }
  if (!split) epoch_items = num_items;
  const std::uint64_t num_epochs = (num_items + epoch_items - 1) / epoch_items;
  // Shards sized to one epoch's staged queries (each epoch stages anew).
  const std::uint32_t shards =
      stage_shard_count(epoch_items * stage_items_factor);

  stats.epochs = static_cast<std::uint32_t>(num_epochs);
  stats.shards = shards;
  stats.epoch_items = epoch_items;
  cur->resize(shards);
  nxt->resize(shards);

  // Epoch 0 stages synchronously (nothing to overlap with yet). Later
  // epochs stage as a single-chunk background job whose nested
  // parallel_for shares the pool with apply — staging an epoch early is
  // safe because apply never changes what staging reads: bucket counts,
  // table handles, and liveness of vertices the earlier epoch did not
  // create. A pool with no workers runs the job inline at submit: the
  // degenerate (serial) pipeline.
  {
    const std::int64_t t0 = pipeline_now_ns();
    stage_epoch(cur, 0, epoch_items < num_items ? epoch_items : num_items,
                shards);
    stats.stage_seconds +=
        static_cast<double>(pipeline_now_ns() - t0) * 1e-9;
    stats.merge_copy_bytes += cur->copied_bytes;
  }

  std::uint64_t total = 0;
  for (std::uint64_t e = 0; e < num_epochs; ++e) {
    simt::ThreadPool::JobHandle job;
    const std::uint64_t next_begin = (e + 1) * epoch_items;
    if (next_begin < num_items) {
      const std::uint64_t next_end =
          next_begin + epoch_items < num_items ? next_begin + epoch_items
                                               : num_items;
      job = pool.submit(1, [&stage_epoch, nxt, next_begin, next_end,
                            shards](std::uint64_t) {
        stage_epoch(nxt, next_begin, next_end, shards);
      });
    }
    const std::int64_t apply_begin = pipeline_now_ns();
    try {
      total += apply(cur->front(), /*overlapped=*/job != nullptr);
    } catch (MutationAbort& abort) {
      // The apply stage died mid-epoch (arena exhaustion / injected
      // fault). Wait out the staging job, then hand the caller the failing
      // epoch's exact outcome plus its input bounds so it can extend the
      // unapplied set with every later epoch's raw input.
      if (job) {
        try {
          pool.wait(job);
        } catch (...) {
        }
      }
      const std::uint64_t end_item =
          next_begin < num_items ? next_begin : num_items;
      throw PipelineAbort{std::move(abort), e * epoch_items, end_item, total};
    } catch (...) {
      if (job) {
        try {
          pool.wait(job);  // never unwind past an in-flight staging job
        } catch (...) {
        }
      }
      throw;
    }
    const std::int64_t apply_end = pipeline_now_ns();
    ++stats.epochs_applied;
    stats.applied_total = total;
    stats.apply_seconds +=
        static_cast<double>(apply_end - apply_begin) * 1e-9;
    if (job) {
      pool.wait(job);  // the epoch fence: stage(e+1) committed, apply(e) done
      const std::int64_t stage_begin = nxt->window_begin_ns();
      const std::int64_t stage_end = nxt->window_end_ns();
      if (stage_end > stage_begin) {
        stats.stage_seconds +=
            static_cast<double>(stage_end - stage_begin) * 1e-9;
        const std::int64_t lo =
            stage_begin > apply_begin ? stage_begin : apply_begin;
        const std::int64_t hi = stage_end < apply_end ? stage_end : apply_end;
        if (hi > lo) {
          stats.overlap_seconds += static_cast<double>(hi - lo) * 1e-9;
        }
      }
      stats.merge_copy_bytes += nxt->copied_bytes;
      std::swap(cur, nxt);
    }
  }
  return total;
}

template <class Policy>
template <typename StageShardFn>
std::uint64_t DynGraph<Policy>::run_mutation_pipeline(
    std::uint64_t num_edges, bool gather_values, bool erase,
    StageShardFn&& stage_shard) {
  auto& pool = simt::ThreadPool::instance();
  // One epoch's full staging pass: stage + group every shard of the
  // epoch's input sub-span in parallel (two-pass count/place when sharded,
  // fused single-pass otherwise), then finalize the shard outputs into
  // the one run list apply consumes — merge-free by default, so NO work
  // is left for the fence bubble.
  const auto stage_epoch = [&, gather_values](ShardedStaging* buf,
                                              std::uint64_t begin,
                                              std::uint64_t end,
                                              std::uint32_t shards) {
    SG_FAULT_DELAY(kStageJob);
    if (SG_FAULT_FIRE(kStageJob)) {
      throw std::runtime_error("slabgraph: injected stage-job fault");
    }
    const std::int64_t t0 = pipeline_now_ns();
    pool.parallel_for(shards, [&, buf, begin, end, shards](std::uint64_t s) {
      BatchStaging& st = buf->shard(static_cast<std::uint32_t>(s));
      stage_shard(begin, end, static_cast<std::uint32_t>(s), shards, st);
      if (shards == 1) {
        // No assembly needed: fused single-pass grouping, no count pass.
        st.group(/*dedup=*/true, gather_values, /*gather_seqs=*/false);
      } else {
        st.group_prepare(/*dedup=*/true);
      }
    });
    buf->finalize(config_.merge_free, gather_values, /*gather_seqs=*/false);
    buf->window_note(t0, pipeline_now_ns());
  };
  return run_epoch_pipeline(
      num_edges, config_.undirected ? 2u : 1u, &staging_bufs_[0],
      &staging_bufs_[1], pipeline_stats_, stage_epoch,
      [&](const BatchStaging& front, bool overlapped) {
        return apply_mutation_runs(front, erase, overlapped);
      });
}

template <class Policy>
std::uint64_t DynGraph<Policy>::insert_batched(
    std::span<const WeightedEdge> edges) {
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  // First-touch table creation needs no lazy-creation mutex even though
  // shards stage in parallel: the shard owning a vertex is the only one
  // that ever calls table_of for it.
  const auto table_of = [this](VertexId u) {
    if (!dict_.has_table(u)) {
      const memory::SlabHandle base =
          arena_.allocate_contiguous(1, slabhash::kEmptyKey);
      dict_.set_table(u, {base, 1});
      dict_.set_edge_count(u, 0);
    }
    if (dict_.deleted(u)) dict_.set_deleted(u, false);  // source revival
    return dict_.table(u);
  };
  std::uint64_t added = 0;
  try {
    added = run_mutation_pipeline(
        edges.size(), /*gather_values=*/Policy::kHasValues, /*erase=*/false,
        [&](std::uint64_t begin, std::uint64_t end, std::uint32_t shard,
            std::uint32_t num_shards, BatchStaging& st) {
          stage_weighted_edges_shard(edges.subspan(begin, end - begin),
                                     config_.undirected, Policy::kHasValues,
                                     config_.hash_seed, shard, num_shards,
                                     table_of, st);
        });
  } catch (PipelineAbort& abort) {
    // Arena exhaustion mid-apply: committed epochs stay applied, counters
    // are exact, and the caller gets the precise unapplied remainder.
    // maybe_auto_rehash is skipped on purpose — rebuilding tables allocates,
    // the one thing the arena just refused to do.
    if (config_.on_pressure) config_.on_pressure();
    std::vector<Edge> unapplied =
        unapplied_from_abort(edges, config_.undirected, abort);
    journal_insert_committed(edges, unapplied);  // the exact committed prefix
    throw PartialBatchError(
        abort.applied_before + abort.epoch.applied, std::move(unapplied),
        std::make_exception_ptr(memory::ArenaExhausted(
            "SlabArena: dynamic slab allocation failed mid-batch")),
        "insert_edges aborted: arena exhausted");
  } catch (const memory::ArenaExhausted&) {
    // Exhaustion outside the bulk path (first-touch table creation during
    // staging): only epoch granularity is known.
    if (config_.on_pressure) config_.on_pressure();
    std::vector<Edge> unapplied = unapplied_from_epoch(edges, pipeline_stats_);
    journal_insert_committed(edges, unapplied);
    throw PartialBatchError(pipeline_stats_.applied_total,
                            std::move(unapplied), std::current_exception(),
                            "insert_edges aborted: arena exhausted");
  } catch (const std::bad_alloc&) {
    throw;  // host heap exhausted: building a partial report could too
  } catch (...) {
    // A staging job died (e.g. injected fault): committed epochs stand,
    // everything from the first uncommitted epoch on is unapplied.
    std::vector<Edge> unapplied = unapplied_from_epoch(edges, pipeline_stats_);
    journal_insert_committed(edges, unapplied);
    throw PartialBatchError(pipeline_stats_.applied_total,
                            std::move(unapplied), std::current_exception(),
                            "insert_edges aborted");
  }
  journal_insert(edges);  // write-behind: committed in memory, now durable
  maybe_auto_rehash();
  return added;
}

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_batched(std::span<const Edge> edges) {
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  const std::uint32_t capacity = dict_.capacity();
  const auto table_of = [this, capacity](VertexId u) {
    return u < capacity && dict_.has_table(u) ? dict_.table(u)
                                              : slabhash::TableRef{};
  };
  std::uint64_t removed = 0;
  try {
    removed = run_mutation_pipeline(
        edges.size(), /*gather_values=*/false, /*erase=*/true,
        [&](std::uint64_t begin, std::uint64_t end, std::uint32_t shard,
            std::uint32_t num_shards, BatchStaging& st) {
          stage_edges_shard(edges.subspan(begin, end - begin),
                            config_.undirected, config_.hash_seed, shard,
                            num_shards, table_of, st);
        });
  } catch (const std::bad_alloc&) {
    throw;  // host heap exhausted: building a partial report could too
  } catch (...) {
    // Deletion never allocates slabs, so only a dying staging job lands
    // here; committed epochs stand, the rest is unapplied.
    std::vector<Edge> unapplied = unapplied_from_epoch(edges, pipeline_stats_);
    journal_erase_committed(edges, unapplied);
    throw PartialBatchError(pipeline_stats_.applied_total,
                            std::move(unapplied), std::current_exception(),
                            "delete_edges aborted");
  }
  journal_erase(edges);  // write-behind: committed in memory, now durable
  maybe_auto_rehash();
  return removed;
}

// The §III auto-rehash policy: "maintain low-cost metrics per vertex ...
// and periodically perform rehashing if it exceeds a given threshold". The
// bulk operations already histogram every run's chain length for free
// (ChainFeedback); after a mutation batch commits, fire rehash_long_chains
// when the tail at/above the configured chain threshold exceeds
// auto_rehash_tail_frac of the runs observed since the last rehash — at
// the default 0.01, when the p99 chain length crossed it. Runs under
// batch_mutex_, after apply: the accumulated feedback is stable, and the
// phase-concurrent model keeps queries out of the phase.
template <class Policy>
void DynGraph<Policy>::maybe_auto_rehash() {
  const double threshold = config_.auto_rehash_p99_slabs;
  if (threshold <= 0.0 || !config_.batch_engine) return;
  if (feedback_.runs_observed == 0) return;
  // hist bin b counts chains of b + 2 slabs (last bin saturating): chains
  // below 2 slabs are never histogrammed, so thresholds clamp to 2, and
  // thresholds past the last bin degrade to its ">= kHistBuckets + 1"
  // tail — the policy may fire earlier than such a threshold asks, never
  // later (GraphConfig::auto_rehash_p99_slabs documents this).
  const std::uint32_t min_chain =
      threshold < 2.0 ? 2u
                      : static_cast<std::uint32_t>(std::ceil(threshold));
  std::uint32_t first_bin = min_chain - 2;
  if (first_bin > ChainFeedback::kHistBuckets - 1) {
    first_bin = ChainFeedback::kHistBuckets - 1;
  }
  std::uint64_t tail = 0;
  for (std::uint32_t b = first_bin; b < ChainFeedback::kHistBuckets; ++b) {
    tail += feedback_.hist[b];
  }
  // Tail fraction crossed (p99 at the default 0.01): integer-exact at the
  // default, and any frac in (0, 1] compares without overflow.
  if (static_cast<double>(tail) >
      static_cast<double>(feedback_.runs_observed) *
          config_.auto_rehash_tail_frac) {
    ++auto_rehash_count_;
    try {
      rehash_long_chains(1.0);  // targeted: consumes the candidate list
    } catch (const memory::ArenaExhausted&) {
      // Opportunistic maintenance must never fail a batch that already
      // committed: report the pressure and leave the long chains for a
      // roomier moment. A table caught mid-move stays on its old (intact)
      // table — only the abandoned fresh slabs are lost until then.
      if (config_.on_pressure) config_.on_pressure();
    }
  }
}

template <class Policy>
std::uint64_t DynGraph<Policy>::apply_mutation_runs(const BatchStaging& staged,
                                                    bool erase,
                                                    bool overlapped) {
  if (staged.runs.empty()) return 0;
  std::atomic<std::uint64_t> total{0};
  // Abort machinery (inserts only — erase never allocates): the first
  // chunk whose bulk op hits arena exhaustion flips the flag; every chunk
  // then stops applying and records its remaining staged pairs instead, so
  // the MutationAbort thrown after the launch carries exactly the pairs
  // that were NOT applied. Counters stay exact throughout: the bulk ops
  // return the precise applied count even on the failing call.
  std::atomic<bool> abort_flag{false};
  std::mutex abort_mutex;
  std::vector<Edge> abort_unapplied;
  simt::LaunchConfig launch_cfg;
  // While a staging job shares the pool, smaller chunks let the scheduler
  // interleave the two jobs instead of parking workers on one of them.
  if (overlapped) launch_cfg.chunks_per_worker = 8;
  simt::launch_runs(
      staged.run_offsets,
      [&](std::uint64_t first, std::uint64_t last) {
        std::uint64_t chunk_total = 0;
        VertexId counter_src = 0;
        std::uint32_t counter_delta = 0;
        bool counting = false;
        std::vector<Edge> chunk_unapplied;
        ChainFeedback chunk_feedback;
        // Runs are sorted by source (within a shard's range), so one atomic
        // counter update covers every consecutive run of the same vertex.
        const auto flush_counter = [&] {
          if (counting && counter_delta != 0) {
            if (erase) {
              simt::atomic_sub(dict_.edge_count_word(counter_src),
                               counter_delta);
            } else {
              simt::atomic_add(dict_.edge_count_word(counter_src),
                               counter_delta);
            }
            chunk_total += counter_delta;
          }
          counter_delta = 0;
        };
        simt::pipeline(
            last - first, kRunPrefetchDepth,
            [&](std::uint64_t i) {
              const QueryRun& run = staged.runs[first + i];
              simt::prefetch(&arena_.resolve(
                  dict_.table(run.src).bucket_head(run.bucket)));
            },
            [&](std::uint64_t i) {
              const QueryRun& run = staged.runs[first + i];
              const std::uint64_t begin = staged.run_offsets[first + i];
              const std::uint64_t end = staged.run_offsets[first + i + 1];
              if (abort_flag.load(std::memory_order_relaxed)) {
                // A peer chunk aborted: record this run untouched.
                for (std::uint64_t k = begin; k < end; ++k) {
                  chunk_unapplied.push_back(Edge{run.src, staged.keys[k]});
                }
                return;
              }
              if (!counting || run.src != counter_src) {
                flush_counter();
                counter_src = run.src;
                counting = true;
              }
              const auto count = static_cast<std::uint32_t>(end - begin);
              const slabhash::TableRef table = dict_.table(run.src);
              std::uint32_t chain_slabs = 0;
              if (erase) {
                counter_delta += Policy::bulk_erase(
                    arena_, table, run.bucket, staged.keys.data() + begin,
                    count, &chain_slabs);
              } else {
                slabhash::BulkStatus status;
                counter_delta += Policy::bulk_insert(
                    arena_, table, run.bucket, staged.keys.data() + begin,
                    staged.values.empty() ? nullptr
                                          : staged.values.data() + begin,
                    count, run.src, &chain_slabs, &status);
                if (!status.ok) {
                  // Arena ran dry mid-run. The failure is not a prefix of
                  // the run (see BulkStatus): the failing wave's
                  // still-pending lanes plus every later key went
                  // unapplied.
                  for (std::uint32_t m = status.fail_pending; m; m &= m - 1) {
                    const std::uint64_t k =
                        begin + status.fail_base +
                        static_cast<std::uint32_t>(std::countr_zero(m));
                    chunk_unapplied.push_back(Edge{run.src, staged.keys[k]});
                  }
                  for (std::uint64_t k = begin + status.fail_base +
                                         simt::kWarpSize;
                       k < end; ++k) {
                    chunk_unapplied.push_back(Edge{run.src, staged.keys[k]});
                  }
                  abort_flag.store(true, std::memory_order_relaxed);
                }
              }
              if (chain_slabs > 1) {
                chunk_feedback.note_long(run.src, chain_slabs);
              }
            });
        flush_counter();
        chunk_feedback.runs_observed += last - first;
        if (chunk_total != 0) {
          total.fetch_add(chunk_total, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> lock(feedback_mutex_);
          feedback_.merge_from(chunk_feedback);
        }
        if (!chunk_unapplied.empty()) {
          std::lock_guard<std::mutex> lock(abort_mutex);
          abort_unapplied.insert(abort_unapplied.end(),
                                 chunk_unapplied.begin(),
                                 chunk_unapplied.end());
        }
      },
      launch_cfg);
  if (abort_flag.load(std::memory_order_relaxed)) {
    MutationAbort abort;
    abort.applied = total.load(std::memory_order_relaxed);
    abort.unapplied = std::move(abort_unapplied);
    throw abort;
  }
  return total.load(std::memory_order_relaxed);
}

template <class Policy>
void DynGraph<Policy>::search_apply_runs(const BatchStaging& staged,
                                         std::uint8_t* found_out,
                                         Weight* weights_out,
                                         bool overlapped) const {
  if (staged.runs.empty()) return;
  simt::LaunchConfig launch_cfg;
  // While a staging job shares the pool, smaller chunks let the scheduler
  // interleave the two jobs instead of parking workers on one of them.
  if (overlapped) launch_cfg.chunks_per_worker = 8;
  // Slice-local scratch; chunks write disjoint [run_offsets[first],
  // run_offsets[last]) ranges, so the shared vectors need no locks.
  std::vector<std::uint8_t> found(staged.keys.size());
  std::vector<std::uint32_t> values;
  if (weights_out != nullptr) values.resize(staged.keys.size());
  simt::launch_runs(
      staged.run_offsets,
      [&](std::uint64_t first, std::uint64_t last) {
        ChainFeedback chunk_feedback;
        simt::pipeline(
            last - first, kRunPrefetchDepth,
            [&](std::uint64_t i) {
              const QueryRun& run = staged.runs[first + i];
              simt::prefetch(&arena_.resolve(
                  dict_.table(run.src).bucket_head(run.bucket)));
            },
            [&](std::uint64_t i) {
              const QueryRun& run = staged.runs[first + i];
              const std::uint64_t begin = staged.run_offsets[first + i];
              const std::uint64_t end = staged.run_offsets[first + i + 1];
              const auto count = static_cast<std::uint32_t>(end - begin);
              std::uint32_t chain_slabs = 0;
              if constexpr (Policy::kHasValues) {
                if (weights_out != nullptr) {
                  Policy::bulk_search_values(arena_, dict_.table(run.src),
                                             run.bucket,
                                             staged.keys.data() + begin, count,
                                             found.data() + begin,
                                             values.data() + begin,
                                             &chain_slabs);
                } else {
                  Policy::bulk_contains(arena_, dict_.table(run.src),
                                        run.bucket, staged.keys.data() + begin,
                                        count, found.data() + begin,
                                        &chain_slabs);
                }
              } else {
                Policy::bulk_contains(arena_, dict_.table(run.src), run.bucket,
                                      staged.keys.data() + begin, count,
                                      found.data() + begin, &chain_slabs);
              }
              // Queries observe chain lengths for free, exactly as the bulk
              // mutations do — search-heavy phases keep the §III metric and
              // the auto-rehash policy's histogram warm.
              if (chain_slabs > 1) {
                chunk_feedback.note_long(run.src, chain_slabs);
              }
              for (std::uint64_t q = begin; q < end; ++q) {
                // Scatter to the input position through the staged sequence.
                if (found_out != nullptr) found_out[staged.seqs[q]] = found[q];
                if (weights_out != nullptr && found[q] != 0) {
                  weights_out[staged.seqs[q]] = values[q];
                }
              }
            });
        chunk_feedback.runs_observed += last - first;
        {
          std::lock_guard<std::mutex> lock(feedback_mutex_);
          feedback_.merge_from(chunk_feedback);
        }
      },
      launch_cfg);
}

template <class Policy>
void DynGraph<Policy>::search_batched(std::span<const Edge> queries,
                                      std::uint8_t* found_out,
                                      Weight* weights_out) const {
  if (found_out != nullptr) {
    std::fill(found_out, found_out + queries.size(), std::uint8_t{0});
  }
  if (weights_out != nullptr) {
    std::fill(weights_out, weights_out + queries.size(), Weight{0});
  }
  auto& pool = simt::ThreadPool::instance();
  if (queries.empty()) return;

  // Queries are phase-concurrent with each other, so each batch pipelines
  // independently through LOCAL staging buffers (the double-buffered
  // members belong to the mutation phase).
  ShardedStaging bufs[2];
  const std::uint32_t capacity = dict_.capacity();
  const auto table_of = [this, capacity](VertexId u) {
    return u < capacity && dict_.has_table(u) ? dict_.table(u)
                                              : slabhash::TableRef{};
  };
  // One query slice's staging pass, with the staged sequence numbers
  // offset to GLOBAL input positions so scatter lands correctly. Safe to
  // run ahead of the current slice's searches: queries never mutate what
  // staging reads.
  const auto stage_epoch = [&](ShardedStaging* buf, std::uint64_t begin,
                               std::uint64_t end, std::uint32_t shards) {
    const std::int64_t t0 = pipeline_now_ns();
    pool.parallel_for(shards, [&, buf, begin, end, shards](std::uint64_t s) {
      BatchStaging& st = buf->shard(static_cast<std::uint32_t>(s));
      stage_queries_shard(queries.subspan(begin, end - begin),
                          config_.hash_seed, static_cast<std::uint32_t>(s),
                          shards, table_of, st,
                          static_cast<std::uint32_t>(begin));
      if (shards == 1) {
        st.group(/*dedup=*/false, /*gather_values=*/false,
                 /*gather_seqs=*/true);
      } else {
        st.group_prepare(/*dedup=*/false);
      }
    });
    buf->finalize(config_.merge_free, /*gather_values=*/false,
                  /*gather_seqs=*/true);
    buf->window_note(t0, pipeline_now_ns());
  };

  BatchPipelineStats stats;
  run_epoch_pipeline(queries.size(), 1u, &bufs[0], &bufs[1], stats,
                     stage_epoch,
                     [&](const BatchStaging& front, bool overlapped) {
                       search_apply_runs(front, found_out, weights_out,
                                         overlapped);
                       return std::uint64_t{0};
                     });
  {
    std::lock_guard<std::mutex> lock(query_stats_mutex_);
    query_stats_ = stats;
  }
}

template <class Policy>
void DynGraph<Policy>::exist_batched(std::span<const Edge> queries,
                                     std::uint8_t* out) const {
  search_batched(queries, out, /*weights_out=*/nullptr);
}

// --------------------------------------------------------------------------
// Bulk adjacency gather: the analytics engine's data path. Count pass is
// free (exact Alg. 1/2 degree counters), prefix-sum sizes ONE output
// buffer, and the emit pass walks each requested vertex's chains once with
// one snapshot + SIMD mask per slab — launch_runs chunks the vertices by
// total degree so skewed frontiers balance across the pool.
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::gather_neighbors(std::span<const VertexId> vertices,
                                        std::vector<std::uint64_t>& offsets,
                                        std::vector<VertexId>& neighbors) const {
  const std::uint32_t capacity = dict_.capacity();
  offsets.resize(vertices.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    offsets[i] = total;
    const VertexId u = vertices[i];
    if (u < capacity && dict_.has_table(u)) total += dict_.edge_count(u);
  }
  offsets[vertices.size()] = total;
  neighbors.resize(total);
  if (vertices.empty()) return;
  VertexId* out = neighbors.data();

  simt::launch_runs(offsets, [&](std::uint64_t first, std::uint64_t last) {
    // Chain depths observed per vertex accumulate locally and merge once
    // per chunk — inform-only, like query phases: gathers enrich the
    // histogram but NEVER fire the auto-rehash policy (that stays a
    // mutation-batch decision; see maybe_auto_rehash).
    ChainFeedback chunk_feedback;
    simt::pipeline(
        last - first, kRunPrefetchDepth,
        [&](std::uint64_t i) {
          const VertexId u = vertices[first + i];
          if (u < capacity && dict_.has_table(u)) {
            simt::prefetch(&arena_.resolve(dict_.table(u).bucket_head(0)));
          }
        },
        [&](std::uint64_t i) {
          const std::uint64_t slot = first + i;
          const std::uint64_t expect = offsets[slot + 1] - offsets[slot];
          if (expect == 0) return;  // unknown / deleted / isolated vertex
          const VertexId u = vertices[slot];
          std::uint32_t chain_slabs = 0;
          Policy::gather(arena_, dict_.table(u), out + offsets[slot],
                         static_cast<std::uint32_t>(expect), &chain_slabs);
          if (chain_slabs > 1) chunk_feedback.note_long(u, chain_slabs);
        });
    chunk_feedback.runs_observed += last - first;
    if (config_.gather_feedback) {
      std::lock_guard<std::mutex> lock(feedback_mutex_);
      feedback_.merge_from(chunk_feedback);
    }
  });
}

template <class Policy>
GatherResult DynGraph<Policy>::gather_neighbors(
    std::span<const VertexId> vertices) const {
  GatherResult result;
  gather_neighbors(vertices, result.offsets, result.neighbors);
  return result;
}

// --------------------------------------------------------------------------
// Scheduled mode (src/core/phase_scheduler.hpp): the async submit_* entry
// points route through a per-graph conductor that fences mutation phases
// from query phases and coalesces same-kind submissions. The conductor is
// the serialization point for scheduled mutations; batch_mutex_ stays
// armed for direct synchronous calls and is uncontended under the
// scheduler.
// --------------------------------------------------------------------------

/// Ready-future wrapper of the inline reference mode (phase_scheduler =
/// false): runs `op` synchronously on the calling thread, capturing its
/// result or exception — the same future surface as scheduled mode, with
/// none of its cross-thread phase safety.
template <typename T, typename Fn>
std::future<T> inline_submit(Fn&& op) {
  std::promise<T> done;
  std::future<T> f = done.get_future();
  try {
    done.set_value(op());
  } catch (...) {
    done.set_exception(std::current_exception());
  }
  return f;
}

template <class Policy>
PhaseScheduler& DynGraph<Policy>::ensure_scheduler() {
  std::call_once(scheduler_once_, [this] {
    PhaseScheduler::Ops ops;
    ops.insert_edges = [this](std::span<const WeightedEdge> edges) {
      return insert_edges(edges);
    };
    ops.delete_edges = [this](std::span<const Edge> edges) {
      return delete_edges(edges);
    };
    ops.edges_exist = [this](std::span<const Edge> queries,
                             std::uint8_t* out) { edges_exist(queries, out); };
    if constexpr (Policy::kHasValues) {
      ops.edge_weights = [this](std::span<const Edge> queries, Weight* weights,
                                std::uint8_t* found) {
        edge_weights(queries, weights, found);
      };
    }
    PhaseScheduler::Limits limits;
    limits.max_pending_submissions = config_.max_pending_submissions;
    limits.max_pending_edges = config_.max_pending_edges;
    limits.backpressure = config_.backpressure;
    limits.submit_timeout_ms = config_.submit_timeout_ms;
    scheduler_ = std::make_unique<PhaseScheduler>(std::move(ops), limits);
    scheduler_ptr_.store(scheduler_.get(), std::memory_order_release);
  });
  return *scheduler_ptr_.load(std::memory_order_acquire);
}

template <class Policy>
std::future<std::uint64_t> DynGraph<Policy>::submit_insert(
    std::vector<WeightedEdge> edges) {
  if (!config_.phase_scheduler) {
    return inline_submit<std::uint64_t>([&] { return insert_edges(edges); });
  }
  return ensure_scheduler().submit_insert(std::move(edges));
}

template <class Policy>
std::future<std::uint64_t> DynGraph<Policy>::submit_erase(
    std::vector<Edge> edges) {
  if (!config_.phase_scheduler) {
    return inline_submit<std::uint64_t>([&] { return delete_edges(edges); });
  }
  return ensure_scheduler().submit_erase(std::move(edges));
}

template <class Policy>
std::future<std::vector<std::uint8_t>> DynGraph<Policy>::submit_edges_exist(
    std::vector<Edge> queries, std::uint32_t deadline_ms) {
  if (!config_.phase_scheduler) {
    // Inline mode runs the query immediately: a deadline cannot expire.
    return inline_submit<std::vector<std::uint8_t>>([&] {
      std::vector<std::uint8_t> out(queries.size(), 0);
      edges_exist(queries, out.data());
      return out;
    });
  }
  return ensure_scheduler().submit_edges_exist(std::move(queries),
                                               deadline_ms);
}

template <class Policy>
std::future<EdgeWeightBatch> DynGraph<Policy>::submit_edge_weights(
    std::vector<Edge> queries, std::uint32_t deadline_ms)
    requires Policy::kHasValues {
  if (!config_.phase_scheduler) {
    return inline_submit<EdgeWeightBatch>([&] {
      EdgeWeightBatch result;
      result.weights.assign(queries.size(), Weight{0});
      result.found.assign(queries.size(), 0);
      edge_weights(queries, result.weights.data(), result.found.data());
      return result;
    });
  }
  return ensure_scheduler().submit_edge_weights(std::move(queries),
                                                deadline_ms);
}

template <class Policy>
std::future<void> DynGraph<Policy>::submit_analytics(
    std::function<void()> task) {
  if (!config_.phase_scheduler) {
    // Inline reference mode: run the task synchronously (inline_submit<T>
    // cannot carry void through set_value).
    std::promise<void> done;
    std::future<void> f = done.get_future();
    try {
      task();
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return f;
  }
  return ensure_scheduler().submit_analytics(std::move(task));
}

template <class Policy>
void DynGraph<Policy>::schedule_drain() {
  if (PhaseScheduler* s = scheduler_ptr_.load(std::memory_order_acquire)) {
    s->drain();
  }
}

template <class Policy>
PhaseScheduleStats DynGraph<Policy>::last_schedule_stats() const {
  if (PhaseScheduler* s = scheduler_ptr_.load(std::memory_order_acquire)) {
    return s->stats();
  }
  return {};
}

// --------------------------------------------------------------------------
// Batched edge deletion (§IV-C2): Algorithm 1 with delete instead of
// replace; the returned boolean decrements the exact edge counters. Scalar
// body in src/core/scalar_oracle.hpp (test-only differential reference).
// --------------------------------------------------------------------------

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_directed(std::span<const Edge> edges) {
  return oracle::delete_directed<Policy>(arena_, dict_, edges,
                                         config_.undirected, config_.hash_seed);
}

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_edges(std::span<const Edge> edges) {
  if (edges.empty()) return 0;
  ensure_journal_usable();
  validate_batch(edges);
  if (config_.batch_engine) return delete_batched(edges);
  return delete_directed(edges);
}

// --------------------------------------------------------------------------
// Algorithm 2: vertex deletion
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::delete_vertices(std::span<const VertexId> ids) {
  if (ids.empty()) return;
  ensure_journal_usable();
  const std::uint64_t seed = config_.hash_seed;
  const std::uint32_t count = static_cast<std::uint32_t>(ids.size());

  // Serial pre-pass: mark the batch. The `doomed` bitmap (this batch only)
  // drives the cleanup so that stale liveness flags from earlier deletions
  // can never widen it; the persistent flags feed vertex_live().
  std::vector<std::uint8_t> doomed(dict_.capacity(), 0);
  for (VertexId v : ids) {
    if (v < dict_.capacity()) {
      doomed[v] = 1;
      dict_.set_deleted(v, true);
    }
  }

  // Phase 1 — remove the deleted vertices from *other* adjacency lists.
  if (config_.undirected) {
    // Undirected: a vertex's own adjacency list names exactly the tables
    // that reference it (Algorithm 2 lines 11-17). One warp per vertex,
    // claimed from an atomic work queue (lines 2-9) for load balance.
    std::uint32_t queue = 0;
    // One warp per vertex, capped so small batches do not oversubscribe.
    const std::uint32_t num_warps = count < 256u ? count : 256u;
    simt::launch_warps(num_warps, [&](const simt::WarpId&) {
      for (;;) {
        // Lines 3-6: lane 0 claims a queue slot; broadcast to the warp.
        const std::uint32_t queue_id = simt::atomic_add(queue, 1u);
        if (queue_id >= count) return;  // line 7-8
        const VertexId warp_vertex = ids[queue_id];  // line 10
        if (warp_vertex >= dict_.capacity() || !dict_.has_table(warp_vertex)) {
          continue;
        }
        // Lines 11-17: iterate the vertex's slabs; every lane takes one
        // destination and deletes warp_vertex from that neighbour's table.
        auto it = edge_iterator(warp_vertex);
        while (it.next()) {
          for (int lane = 0; lane < it.slots(); ++lane) {
            const std::uint32_t dst = it.key(lane);
            // Empties exist only at the tail of a slab's used region, so
            // the first EMPTY ends this slab (the §IV-C2 invariant).
            if (dst == slabhash::kEmptyKey) break;
            if (dst == slabhash::kTombstoneKey) continue;
            if (dst >= dict_.capacity() || doomed[dst] ||
                !dict_.has_table(dst)) {
              continue;  // neighbour is being deleted too: its table dies anyway
            }
            if (Policy::erase(arena_, dict_.table(dst), warp_vertex, seed)) {
              simt::atomic_sub(dict_.edge_count_word(dst), 1u);
            }
          }
        }
        // Lines 18-22, same warp pass: free this vertex's dynamically
        // allocated slabs (base slabs stay), zero its edge count. Safe here
        // because no other warp touches a doomed vertex's table.
        Policy::clear(arena_, dict_.table(warp_vertex));
        dict_.set_edge_count(warp_vertex, 0);
      }
    });
  } else {
    // Directed: incoming edges are unknown, so run the paper's follow-up
    // sweep — "a follow-up lookup and delete all of the deleted vertices in
    // all of the hash tables" — over every live vertex.
    std::uint32_t queue = 0;
    const std::uint32_t capacity = dict_.capacity();
    simt::launch_warps(256, [&](const simt::WarpId&) {
      for (;;) {
        const std::uint32_t u = simt::atomic_add(queue, 1u);
        if (u >= capacity) return;
        if (!dict_.has_table(u) || doomed[u]) continue;
        const slabhash::TableRef table = dict_.table(u);
        auto it = EdgeSlabIterator<Policy>(arena_, table);
        while (it.next()) {
          for (int lane = 0; lane < it.slots(); ++lane) {
            const std::uint32_t dst = it.key(lane);
            if (dst == slabhash::kEmptyKey) break;  // empties only at tail
            if (dst == slabhash::kTombstoneKey) continue;
            if (dst < capacity && doomed[dst]) {
              if (Policy::erase(arena_, table, dst, seed)) {
                simt::atomic_sub(dict_.edge_count_word(u), 1u);
              }
            }
          }
        }
      }
    });
  }

  // Phase 2 (directed only; the undirected pass cleans per-warp above) —
  // dismantle the deleted vertices' own tables: free dynamically allocated
  // slabs (lines 18-20), keep base slabs ("statically allocated memory is
  // not reclaimed"), zero the edge count (line 22).
  if (!config_.undirected) {
    std::uint32_t queue2 = 0;
    simt::launch_warps(64, [&](const simt::WarpId&) {
      for (;;) {
        const std::uint32_t queue_id = simt::atomic_add(queue2, 1u);
        if (queue_id >= count) return;
        const VertexId v = ids[queue_id];
        if (v >= dict_.capacity() || !dict_.has_table(v)) continue;
        Policy::clear(arena_, dict_.table(v));
        dict_.set_edge_count(v, 0);
      }
    });
  }
  if (journal_) {
    advance_journal_seq(journal_->append_delete_vertices(ids));
  }
}

// --------------------------------------------------------------------------
// Queries
// --------------------------------------------------------------------------

template <class Policy>
bool DynGraph<Policy>::edge_exists(VertexId u, VertexId v) const {
  // No liveness flag checks: Algorithm 2's cleanup guarantees deleted
  // vertices appear in no adjacency list and own an empty table, so the
  // table contents alone answer correctly ("no edge query involving u may
  // have a false positive result").
  if (u >= dict_.capacity() || !dict_.has_table(u)) return false;
  return Policy::contains(arena_, dict_.table(u), v, config_.hash_seed);
}

template <class Policy>
void DynGraph<Policy>::edges_exist(std::span<const Edge> queries,
                                   std::uint8_t* out) const {
  if (queries.empty()) return;
  if (config_.batch_engine) {
    exist_batched(queries, out);  // batched map_search through the engine
    return;
  }
  simt::launch(queries.size(), [&](const simt::WarpId& warp) {
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!warp.lane_active(lane)) continue;
      const std::uint64_t i = warp.item(lane);
      out[i] = edge_exists(queries[i].src, queries[i].dst) ? 1 : 0;
    }
  });
}

template <class Policy>
slabhash::MapFindResult DynGraph<Policy>::edge_weight(VertexId u, VertexId v) const
    requires Policy::kHasValues {
  if (u >= dict_.capacity() || !dict_.has_table(u)) return {};
  return slabhash::map_search(arena_, dict_.table(u), v, config_.hash_seed);
}

template <class Policy>
void DynGraph<Policy>::edge_weights(std::span<const Edge> queries,
                                    Weight* weights, std::uint8_t* found) const
    requires Policy::kHasValues {
  if (queries.empty()) return;
  if (config_.batch_engine) {
    search_batched(queries, found, weights);
    return;
  }
  // Scalar fallback (the differential oracle): one point lookup per lane.
  simt::launch(queries.size(), [&](const simt::WarpId& warp) {
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!warp.lane_active(lane)) continue;
      const std::uint64_t i = warp.item(lane);
      const slabhash::MapFindResult r =
          edge_weight(queries[i].src, queries[i].dst);
      weights[i] = r.found ? r.value : Weight{0};
      if (found != nullptr) found[i] = r.found ? 1 : 0;
    }
  });
}

template <class Policy>
void DynGraph<Policy>::for_each_neighbor(
    VertexId u, const std::function<void(VertexId, Weight)>& fn) const {
  if (u >= dict_.capacity() || !dict_.has_table(u)) return;
  Policy::for_each(arena_, dict_.table(u), fn);
}

// --------------------------------------------------------------------------
// Maintenance & accounting
// --------------------------------------------------------------------------

template <class Policy>
void DynGraph<Policy>::flush_all_tombstones() {
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (dict_.has_table(u)) Policy::flush_tombstones(arena_, dict_.table(u));
  }
}

template <class Policy>
std::uint64_t DynGraph<Policy>::delete_edges_older_than(Weight threshold)
    requires Policy::kHasValues {
  // Sweep live vertices in waves: gather each wave's adjacency, read the
  // stored timestamps through the batched weight lookup, and collect every
  // directed edge with ts < threshold (strictly below — the DynoGraph
  // window convention; an edge AT the threshold survives). The expired set
  // then retires as ONE delete_edges batch on the engine pipeline.
  constexpr std::uint32_t kWave = 4096;
  std::vector<VertexId> wave;
  wave.reserve(kWave);
  std::vector<Edge> expired;
  std::vector<Edge> probes;
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbors;
  std::vector<Weight> weights;
  const auto drain_wave = [&] {
    if (wave.empty()) return;
    gather_neighbors(wave, offsets, neighbors);
    probes.clear();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      for (std::uint64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        // Undirected graphs store each edge twice with the same timestamp;
        // probing only the src <= dst orientation halves the lookup work,
        // and delete_edges erases the mirror itself.
        if (config_.undirected && wave[i] > neighbors[k]) continue;
        probes.push_back(Edge{wave[i], neighbors[k]});
      }
    }
    weights.assign(probes.size(), Weight{0});
    edge_weights(probes, weights.data());
    for (std::size_t q = 0; q < probes.size(); ++q) {
      if (weights[q] < threshold) expired.push_back(probes[q]);
    }
    wave.clear();
  };
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (!vertex_live(u) || dict_.edge_count(u) == 0) continue;
    wave.push_back(u);
    if (wave.size() == kWave) drain_wave();
  }
  drain_wave();
  if (expired.empty()) return 0;
  return delete_edges(expired);
}

template <class Policy>
typename DynGraph<Policy>::CompactStats DynGraph<Policy>::compact() {
  CompactStats s;
  s.chunks_before = arena_.live_chunks();
  // Dead keys would be migrated byte-for-byte; shed them first so shrink
  // sizes from real occupancy and migration copies only live chains.
  flush_all_tombstones();
  // Table shrink. Growth rehash sizes a table for the live count it sees
  // and nothing ever sizes it back down, so under a sliding window every
  // table settles at its PEAK degree and total base memory ratchets up as
  // running maxima drift. Rebuild any table whose live count warrants at
  // most half its current buckets; post-shrink occupancy lands at
  // load_factor, comfortably under the auto-rehash grow trigger, so the
  // half hysteresis prevents ping-pong.
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (!dict_.has_table(u)) continue;
    const slabhash::TableRef table = dict_.table(u);
    if (dict_.edge_count(u) == 0) {
      // Aging emptied this vertex entirely: drop the table instead of
      // keeping a 1-bucket stub forever. Lazy first-touch creation
      // rebuilds it if the vertex re-enters the window, so total base
      // memory tracks the vertices IN the window, not every vertex the
      // stream ever mentioned. (delete_vertices itself still keeps
      // tables — §IV-D2 — reclamation is compact's job alone.)
      Policy::clear(arena_, table);
      arena_.free_contiguous(table.base, table.num_buckets);
      dict_.set_table(u, {memory::kNullSlab, 0});
      ++s.shrunk_tables;
      continue;
    }
    if (table.num_buckets <= 1) continue;
    const std::uint32_t target = slabhash::buckets_for(
        dict_.edge_count(u), config_.load_factor, Policy::kSlotCapacity);
    if (target * 2 > table.num_buckets) continue;
    rebuild_table(u, table, target);
    ++s.shrunk_tables;
  }
  arena_.drain_free_caches();
  // Victim selection: dynamic chunks below the occupancy threshold.
  // (flag vector indexed by chunk, consumed by allocate_avoiding so a
  // migrated slab never lands in another victim).
  const auto occupancy = arena_.dynamic_chunk_occupancy();
  std::uint32_t max_index = 0;
  for (const auto& o : occupancy) max_index = std::max(max_index, o.index);
  std::vector<std::uint8_t> victim(max_index + 1, 0);
  const auto threshold = static_cast<std::uint32_t>(
      config_.compact_occupancy * memory::SlabArena::kChunkSlabs);
  for (const auto& o : occupancy) {
    if (o.used_slabs > 0 && o.used_slabs < threshold) {
      victim[o.index] = 1;
      ++s.victim_chunks;
    }
  }
  if (s.victim_chunks != 0) {
    // Walk every bucket chain; any overflow slab living in a victim chunk
    // is copied into a non-victim chunk and the owning next pointer is
    // rewritten. Base slabs are bulk (never dynamic), so only chain TAILS
    // move — the table refs themselves are untouched.
    for (VertexId u = 0; u < dict_.capacity(); ++u) {
      if (!dict_.has_table(u)) continue;
      const slabhash::TableRef table = dict_.table(u);
      for (std::uint32_t b = 0; b < table.num_buckets; ++b) {
        memory::SlabHandle prev = table.bucket_head(b);
        for (;;) {
          const memory::SlabHandle next = simt::atomic_load(
              arena_.resolve(prev).words[slabhash::kNextPtrWord]);
          if (next == memory::kNullSlab) break;
          const std::uint32_t ci = memory::SlabArena::chunk_index_of(next);
          if (ci < victim.size() && victim[ci] != 0) {
            const memory::SlabHandle moved =
                arena_.allocate_avoiding(slabhash::kEmptyKey, victim);
            const memory::Slab& src = arena_.resolve(next);
            memory::Slab& dst = arena_.resolve(moved);
            for (int w = 0; w < memory::kWordsPerSlab; ++w) {
              dst.words[w] = src.words[w];
            }
            simt::atomic_store(
                arena_.resolve(prev).words[slabhash::kNextPtrWord], moved);
            arena_.free_direct(next);
            ++s.migrated_slabs;
            prev = moved;
          } else {
            prev = next;
          }
        }
      }
    }
  }
  s.released_chunks =
      arena_.release_empty_chunks(config_.compact_keep_free_chunks);
  s.chunks_after = arena_.live_chunks();
  last_compact_stats_ = s;
  return s;
}

template <class Policy>
std::future<std::uint64_t> DynGraph<Policy>::submit_age_out(Weight threshold)
    requires Policy::kHasValues {
  if (!config_.phase_scheduler) {
    return inline_submit<std::uint64_t>(
        [&] { return delete_edges_older_than(threshold); });
  }
  return ensure_scheduler().submit_maintenance(
      [this, threshold] { return delete_edges_older_than(threshold); });
}

template <class Policy>
std::future<std::uint64_t> DynGraph<Policy>::submit_compact() {
  if (!config_.phase_scheduler) {
    return inline_submit<std::uint64_t>(
        [&] { return std::uint64_t{compact().released_chunks}; });
  }
  return ensure_scheduler().submit_maintenance(
      [this] { return std::uint64_t{compact().released_chunks}; });
}

template <class Policy>
std::future<std::uint64_t> DynGraph<Policy>::submit_maintenance(
    std::function<std::uint64_t()> task) {
  if (!config_.phase_scheduler) {
    return inline_submit<std::uint64_t>([&] { return task(); });
  }
  return ensure_scheduler().submit_maintenance(std::move(task));
}

template <class Policy>
bool DynGraph<Policy>::maybe_rehash_table(VertexId u, double max_chain_slabs) {
  if (u >= dict_.capacity() || !dict_.has_table(u)) return false;
  const slabhash::TableRef old_table = dict_.table(u);
  const std::uint32_t live = dict_.edge_count(u);
  const double expected_chain =
      static_cast<double>(live) /
      (static_cast<double>(old_table.num_buckets) * Policy::kSlotCapacity);
  if (expected_chain <= max_chain_slabs) return false;
  // Build a right-sized table and move the live keys over; the move also
  // sheds tombstones. Only adjacency-list contents move — the dictionary
  // entry is a pointer swap, as in §IV-A1.
  rebuild_table(u, old_table, slabhash::buckets_for(
                                  live, config_.load_factor,
                                  Policy::kSlotCapacity));
  return true;
}

template <class Policy>
void DynGraph<Policy>::rebuild_table(VertexId u,
                                     const slabhash::TableRef& old_table,
                                     std::uint32_t buckets) {
  slabhash::TableRef fresh{
      arena_.allocate_contiguous(buckets, slabhash::kEmptyKey), buckets};
  Policy::for_each(arena_, old_table, [&](VertexId dst, Weight w) {
    Policy::insert(arena_, fresh, dst, w, config_.hash_seed, u);
  });
  Policy::clear(arena_, old_table);  // frees the old overflow chain
  dict_.set_table(u, fresh);
  // The old bucket array has no live references once the dictionary points
  // at the fresh table: return the whole range for reuse. Without this,
  // every rehash leaks one base array and sliding-window churn (aging
  // batches -> tombstoned chains -> auto-rehash) grows bulk memory without
  // bound — the leak micro_stream's steady_chunk_flatness gate watches.
  arena_.free_contiguous(old_table.base, old_table.num_buckets);
}

template <class Policy>
std::uint32_t DynGraph<Policy>::rehash_long_chains(double max_chain_slabs,
                                                   bool full_scan) {
  if (max_chain_slabs <= 0.0) {
    throw std::invalid_argument("max_chain_slabs must be positive");
  }
  last_rehash_stats_ = {};
  // The targeted path is complete for thresholds >= 1 slab: an offender
  // has more live keys than base capacity, so some bulk insert extended
  // (and therefore observed) a chain past the base slab and recorded the
  // vertex. Sub-slab thresholds can flag tables that never chained,
  // scalar-path inserts (engine off) report no feedback, and a saturated
  // candidate list has dropped observations — all fall back to the full
  // sweep (which resets the feedback).
  const bool targeted = !full_scan && config_.batch_engine &&
                        max_chain_slabs >= 1.0 && !feedback_.saturated;
  last_rehash_stats_.targeted = targeted;
  std::uint32_t rehashed = 0;
  if (targeted) {
    std::vector<VertexId>& candidates = feedback_.candidates;
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<VertexId> survivors;
    for (const VertexId u : candidates) {
      ++last_rehash_stats_.scanned;
      if (maybe_rehash_table(u, max_chain_slabs)) {
        ++rehashed;
      } else if (u < dict_.capacity() && dict_.has_table(u)) {
        // Observed past its base slab but under this threshold: keep the
        // observation for a future, stricter call.
        survivors.push_back(u);
      }
    }
    feedback_.candidates = std::move(survivors);
    feedback_.hist = {};  // the histogram described the consumed interval
    feedback_.runs_observed = 0;
  } else {
    feedback_.clear();  // the full sweep subsumes every observation
    for (VertexId u = 0; u < dict_.capacity(); ++u) {
      if (!dict_.has_table(u)) continue;
      ++last_rehash_stats_.scanned;
      if (maybe_rehash_table(u, max_chain_slabs)) ++rehashed;
    }
  }
  last_rehash_stats_.rehashed = rehashed;
  return rehashed;
}

template <class Policy>
GraphMemoryStats DynGraph<Policy>::memory_stats() const {
  GraphMemoryStats stats;
  for (VertexId u = 0; u < dict_.capacity(); ++u) {
    if (!dict_.has_table(u)) continue;
    const slabhash::TableOccupancy occ = Policy::occupancy(arena_, dict_.table(u));
    stats.live_edges += occ.live_keys;
    stats.tombstones += occ.tombstones;
    stats.slots += occ.slots;
    stats.base_slabs += occ.base_slabs;
    stats.overflow_slabs += occ.overflow_slabs;
  }
  stats.bytes = (stats.base_slabs + stats.overflow_slabs) * sizeof(memory::Slab);
  return stats;
}

}  // namespace sg::core
