// Epoch-based phase scheduler: makes the phase-concurrent contract (§II-A)
// enforceable instead of advisory.
//
// The structure is phase-concurrent: mutation batches and query batches are
// each internally parallel, but a mutation batch must never overlap a query
// batch. Until now that interleaving was the CALLER's problem — the graph's
// batch_mutex_ only serializes mutations against each other, and nothing
// stops a thread from calling edges_exist while another thread's
// insert_edges is mid-apply. DynoGraph-style streaming workloads (ingest
// interleaved with analytics epochs) need that contract enforced by the
// structure itself.
//
// The scheduler accepts mutation batches, query batches, and analytics
// tasks from ANY thread, classifies each submission by kind, and runs the
// stream as alternating PHASES:
//
//   * every submission queued at a phase boundary of the same kind is
//     admitted into the shared phase — small submissions coalesce;
//   * within a MUTATION phase, consecutive same-operation submissions are
//     concatenated (submission order preserved) and applied as ONE engine
//     batch, riding the engine's double-buffered epoch pipeline — the
//     "shared epochs" that make many small ingest calls cost like one big
//     one;
//   * within a QUERY phase, every admitted batch runs CONCURRENTLY as its
//     own ThreadPool job (query batches are safely concurrent with each
//     other; each is internally pipelined as before);
//   * within an ANALYTICS phase (submit_analytics — the third fenced
//     kind), every admitted task runs concurrently as its own pool job;
//     tasks traverse the graph read-only (bulk gathers, queries) against
//     a phase-consistent state, which is what lets dynamic triangle count
//     consume mutation batches as deltas inside the pipeline;
//   * between phases of different kinds the conductor FENCES: the next
//     phase opens only after every task of the open phase has completed.
//
// A single conductor thread owns phase selection, so mutation batches are
// serialized by construction — in scheduled mode the conductor, not the
// graph's raw batch_mutex_, is the serialization point (the mutex remains
// armed for direct synchronous calls and is uncontended under the
// scheduler). Submission order is FIFO: a thread that submits A before B
// observes A applied before B, and a thread that waits on a mutation's
// future before submitting a query is guaranteed the query sees that
// mutation.
//
// Fairness: a phase admits the longest same-kind PREFIX of the FIFO queue
// — never cherry-picking around an opposite-kind submission — so the queue
// head always opens the next phase and neither kind can starve the other,
// while every burst of same-kind submissions still coalesces. Stats (phase
// switches, coalesced submissions, fence wait time) are exposed through
// stats() / DynGraph::last_schedule_stats().
//
// Admission control (docs/ROBUSTNESS.md): the pending queue can be bounded
// (Limits / GraphConfig::max_pending_submissions, max_pending_edges), with
// the overflow behavior selected by BackpressurePolicy — block the
// submitter (optionally with a timeout), reject the newcomer, or shed the
// oldest pending queries (mutations are never shed). Queries may carry a
// deadline; the conductor rejects expired ones at phase admission instead
// of running them. Every refused submission resolves its future to
// core::SubmitRejected with a typed reason — nothing is silently dropped,
// including at shutdown, where the destructor rejects (not runs) whatever
// is still queued.
//
// The scheduler is type-erased over the graph: DynGraph<Policy> hands it
// four callbacks (PhaseScheduler::Ops) bound to its existing batched entry
// points, so one non-templated conductor serves both the map and set
// variants.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/core/errors.hpp"
#include "src/core/types.hpp"

namespace sg::core {

/// Result of a scheduled batched weight lookup (DynGraphMap only):
/// weights[i] is the stored weight of queries[i] (0 on a miss) and
/// found[i] = 1 iff the edge is present.
struct EdgeWeightBatch {
  std::vector<Weight> weights;
  std::vector<std::uint8_t> found;
};

/// Counters of the scheduled stream since construction. Snapshot via
/// PhaseScheduler::stats() (or DynGraph::last_schedule_stats()).
struct PhaseScheduleStats {
  std::uint64_t submitted_mutations = 0;  ///< insert/erase submissions
  std::uint64_t submitted_queries = 0;    ///< exist/weight submissions
  std::uint64_t submitted_analytics = 0;  ///< analytics-task submissions
  std::uint64_t submitted_snapshots = 0;  ///< snapshot-task submissions
  std::uint64_t submitted_maintenance = 0;  ///< aged-erase/compact submissions
  std::uint64_t mutation_phases = 0;      ///< phases that ran mutations
  std::uint64_t query_phases = 0;         ///< phases that ran queries
  std::uint64_t analytics_phases = 0;     ///< phases that ran analytics
  /// Mutation->query / query->mutation transitions: each one paid a fence.
  std::uint64_t phase_switches = 0;
  /// Submissions beyond the first admitted into each phase — batches that
  /// shared a phase (and, for consecutive same-op mutations, a single
  /// engine batch / epoch pipeline) instead of paying their own fence.
  std::uint64_t coalesced_batches = 0;
  /// Conductor wall-clock spent blocked on an open phase's outstanding
  /// tasks before the next phase could open (the fence cost).
  double fence_wait_seconds = 0.0;
  // ---- admission control (docs/ROBUSTNESS.md) --------------------------
  /// Submissions refused outright: queue full under kReject (or with
  /// nothing sheddable under kShedOldestQueries), kBlock timeout, or
  /// submit/shutdown races. Each resolved its future to SubmitRejected.
  std::uint64_t rejected_submissions = 0;
  /// Pending queries evicted by kShedOldestQueries to admit newer work.
  std::uint64_t shed_queries = 0;
  /// Queries whose deadline had passed when their phase opened; rejected
  /// at admission instead of run.
  std::uint64_t expired_queries = 0;
  /// Total submitter wall-clock spent blocked by kBlock backpressure.
  std::uint64_t blocked_ns = 0;
  /// High-water mark of pending (queued, not yet admitted) submissions.
  std::uint64_t max_queue_depth = 0;

  /// Element-wise accumulation — how the sharding tier folds per-shard
  /// conductor counters into tier-level stats (src/shard/). Counters sum;
  /// max_queue_depth takes the max (a high-water mark has no meaningful
  /// sum).
  PhaseScheduleStats& operator+=(const PhaseScheduleStats& other);
};

/// The conductor. One per scheduled graph; owns a single thread that
/// drains the submission queue phase by phase (see file comment).
class PhaseScheduler {
 public:
  /// Graph entry points the phases execute through, type-erased so one
  /// scheduler serves DynGraphMap and DynGraphSet. `edge_weights` may be
  /// empty (the set variant never submits weighted queries).
  struct Ops {
    std::function<std::uint64_t(std::span<const WeightedEdge>)> insert_edges;
    std::function<std::uint64_t(std::span<const Edge>)> delete_edges;
    std::function<void(std::span<const Edge>, std::uint8_t*)> edges_exist;
    std::function<void(std::span<const Edge>, Weight*, std::uint8_t*)>
        edge_weights;
  };

  /// Admission-control knobs (mirrors the GraphConfig fields of the same
  /// names; all zero = unbounded, the historical behavior).
  struct Limits {
    std::uint32_t max_pending_submissions = 0;  ///< queued-submission cap
    std::uint64_t max_pending_edges = 0;        ///< queued-item cap
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    std::uint32_t submit_timeout_ms = 0;  ///< kBlock wait bound (0 = forever)
  };

  explicit PhaseScheduler(Ops ops);  ///< unbounded (default Limits)
  PhaseScheduler(Ops ops, Limits limits);

  /// Finishes the phase in flight, REJECTS every still-queued submission
  /// (its future resolves to SubmitRejected{kShutdown} — queued work is
  /// never silently dropped, and never run against a dying graph), then
  /// joins the conductor. Call drain() first for the run-everything exit.
  ~PhaseScheduler();

  PhaseScheduler(const PhaseScheduler&) = delete;
  PhaseScheduler& operator=(const PhaseScheduler&) = delete;

  // ---- submission (any thread) -----------------------------------------
  /// The future resolves once the submission's mutation phase committed,
  /// to the number of edges its COALESCED GROUP applied: consecutive
  /// same-op submissions admitted into one phase merge into a single
  /// engine batch, and every member of the group observes the group
  /// total (a submission that ran alone gets its exact count).
  std::future<std::uint64_t> submit_insert(std::vector<WeightedEdge> edges);
  std::future<std::uint64_t> submit_erase(std::vector<Edge> edges);

  /// The future resolves to out[i] = 1 iff queries[i] was present in the
  /// phase-consistent state the query phase ran against.
  ///
  /// `deadline_ms` (0 = none) bounds the query's staleness: if the phase
  /// that would run it opens after submission + deadline_ms, the conductor
  /// rejects it at admission (future resolves to
  /// SubmitRejected{kDeadlineExpired}) instead of computing an answer
  /// nobody is waiting for. Mutations never expire — they carry state.
  std::future<std::vector<std::uint8_t>> submit_edges_exist(
      std::vector<Edge> queries, std::uint32_t deadline_ms = 0);

  /// Batched weight lookup (map graphs only; requires Ops::edge_weights).
  /// `deadline_ms` as in submit_edges_exist.
  std::future<EdgeWeightBatch> submit_edge_weights(std::vector<Edge> queries,
                                                   std::uint32_t deadline_ms = 0);

  /// The third phase kind: `task` runs inside a fenced ANALYTICS phase —
  /// never overlapping a mutation phase, so read-only traversal of the
  /// graph (bulk gathers, queries) is safe inside it. Consecutive
  /// analytics submissions admitted into one phase run concurrently as
  /// pool jobs, exactly like query batches. Analytics carry no deadline
  /// and are never shed (their side effects — e.g. an incremental
  /// triangle count's accumulator — are state, like mutations). The
  /// future resolves when the task returns, or carries its exception.
  std::future<void> submit_analytics(std::function<void()> task);

  /// A snapshot task (persist::snapshot bound to a path) scheduled as an
  /// ANALYTICS-kind submission: it runs inside a fenced phase, so the cut
  /// it serializes is epoch-consistent — every mutation whose future
  /// resolved before the submission is in the file, and no mutation
  /// submitted after it leaks in (FIFO admission). Counted separately in
  /// stats (submitted_snapshots, not submitted_analytics); phase
  /// accounting is shared with analytics.
  std::future<void> submit_snapshot(std::function<void()> task);

  /// A MAINTENANCE task (aged-edge retirement, arena compaction) scheduled
  /// as a MUTATION-kind submission: it mutates the structure, so it must
  /// own the phase's exclusive write window. Unlike insert/erase
  /// submissions it never coalesces with its neighbors — the task runs
  /// alone, inline on the conductor, between the engine batches of its
  /// phase. The future resolves to the task's count (edges retired, chunks
  /// released — caller-defined), or carries its exception. Counted as
  /// submitted_maintenance in stats.
  std::future<std::uint64_t> submit_maintenance(
      std::function<std::uint64_t()> task);

  /// Blocks until every submission accepted so far has completed and no
  /// phase is open. New submissions may arrive while draining; they are
  /// drained too.
  void drain();

  PhaseScheduleStats stats() const;

 private:
  enum class Kind : std::uint8_t { kMutation, kQuery, kAnalytics };

  /// One queued submission. Mutations carry edges (insert) or plain edges
  /// (erase); queries carry probes; analytics carry a task closure.
  /// Exactly one payload is active.
  struct Submission {
    Kind kind = Kind::kMutation;
    bool erase = false;     ///< mutations: erase vs insert
    bool weighted = false;  ///< queries: edge_weights vs edges_exist
    bool snapshot = false;  ///< analytics: snapshot task (stats only)
    bool has_deadline = false;  ///< queries: reject if admitted past deadline
    std::chrono::steady_clock::time_point deadline;
    std::vector<WeightedEdge> inserts;
    std::vector<Edge> edges;  ///< erase targets or query probes
    std::function<void()> task;  ///< analytics payload
    /// Mutation-kind maintenance payload (aged erase, compaction); when
    /// set, the submission runs alone instead of coalescing.
    std::function<std::uint64_t()> maintenance;
    std::promise<std::uint64_t> mutation_result;
    std::promise<std::vector<std::uint8_t>> exist_result;
    std::promise<EdgeWeightBatch> weight_result;
    std::promise<void> analytics_result;
  };

  void enqueue(Submission&& s);
  /// Items (edges or probes) a submission would add to the pending queue.
  static std::uint64_t submission_items(const Submission& s);
  /// Resolves the submission's future to SubmitRejected{reason}.
  static void reject_submission(Submission& s, RejectReason reason);
  /// True iff a submission of `items` items fits under limits_ right now.
  /// An empty queue always admits: a single submission larger than
  /// max_pending_edges must not wedge forever.
  bool fits_locked(std::uint64_t items) const;
  /// Runs the configured backpressure policy until `s` fits (or resolves
  /// its future to SubmitRejected and returns false). kBlock waits on
  /// cv_space_, charging the wait to stats_.blocked_ns.
  bool admit_locked(std::unique_lock<std::mutex>& lock, Submission& s,
                    std::uint64_t items);
  void conductor_loop();
  /// Runs one phase over `batch` (all the same kind). Called with mutex_
  /// UNLOCKED; returns the conductor time spent fenced on the phase's
  /// outstanding tasks before it could close (0 for mutation phases, which
  /// run inline on the conductor).
  double run_mutation_phase(std::vector<Submission>& batch);
  double run_query_phase(std::vector<Submission>& batch);
  double run_analytics_phase(std::vector<Submission>& batch);
  /// Fails every promise of `batch` not already satisfied with `error` —
  /// the conductor's last line of defense when a phase runner throws
  /// outside the per-submission try blocks (infrastructure failure, e.g.
  /// bad_alloc): pending futures must resolve, and the conductor thread
  /// must survive.
  static void fail_batch(std::vector<Submission>& batch,
                         std::exception_ptr error);

  Ops ops_;
  Limits limits_;
  mutable std::mutex mutex_;
  std::condition_variable cv_submit_;  ///< wakes the conductor
  std::condition_variable cv_drained_;  ///< wakes drain()ers
  std::condition_variable cv_space_;  ///< wakes kBlock-ed submitters
  std::vector<Submission> queue_;      ///< FIFO; conductor snapshots runs
  std::uint64_t pending_edges_ = 0;    ///< items queued, not yet admitted
  bool phase_open_ = false;  ///< conductor is executing a snapshot
  bool stop_ = false;
  bool have_last_kind_ = false;
  Kind last_kind_ = Kind::kMutation;
  PhaseScheduleStats stats_;
  std::thread conductor_;  ///< last member: joins before state dies
};

}  // namespace sg::core
