#!/usr/bin/env python3
"""Dead-link checker for the repo docs (the CI `docs` job).

Scans markdown files for inline links/images `[text](target)` and
reference-style file mentions in backticks that look like repo paths, and
fails (exit 1) when a relative target does not exist on disk. External
(http/https/mailto) targets and pure #anchors are skipped; a `path#anchor`
target is checked for the path part only.

Usage:
    python3 tools/check_doc_links.py README.md docs [more files or dirs...]
"""

import os
import re
import sys

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
# `path/with/slash.ext` in backticks: docs name source files this way; a
# dead one usually means a file was renamed without updating the docs.
# Only plain repo-relative paths are checked (no wildcards, no flags, no
# templates/assignments, no paths into the untracked build tree).
_BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[a-z]{1,4})`")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(md_path, repo_root):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(md_path)
    targets = []
    for match in _LINK.finditer(text):
        targets.append((match.group(1), "link"))
    for match in _BACKTICK_PATH.finditer(text):
        path = match.group(1)
        if path.startswith("build"):
            continue  # build outputs are not tracked files
        targets.append((path, "path mention"))
    for target, kind in targets:
        if target.startswith(_SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        # Links resolve relative to the markdown file; bare path mentions
        # (`src/core/...`) resolve from the repo root. Accept either.
        candidates = [os.path.normpath(os.path.join(base, path)),
                      os.path.normpath(os.path.join(repo_root, path))]
        if not any(os.path.exists(c) for c in candidates):
            errors.append(f"{md_path}: dead {kind} -> {target}")
    return errors


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = []
    for arg in argv or ["README.md", "docs"]:
        if os.path.isdir(arg):
            for name in sorted(os.listdir(arg)):
                if name.endswith(".md"):
                    files.append(os.path.join(arg, name))
        else:
            files.append(arg)
    errors = []
    for md in files:
        errors.extend(check_file(md, repo_root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'FAILED' if errors else 'no dead links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
