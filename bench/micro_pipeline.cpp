// micro_pipeline: the sharded, double-buffered batch pipeline benchmark.
//
// Two sections:
//
//   overlap   streams a sequence of insert batches through the engine at
//             several pool widths, once with the double buffer off (the
//             PR 2 single-buffer engine) and once on, reporting wall-clock
//             throughput, the measured stage/apply overlap window, and the
//             fraction of staging time hidden behind apply. At >= 2
//             threads the overlap must be > 0 — that is the pipeline
//             working; at 1 thread the pipeline degenerates and the two
//             configurations should tie.
//
//   rehash    builds a hub-skewed graph twice and runs rehash_long_chains
//             targeted (consuming the chain-length feedback apply recorded
//             for free) vs full-scan, reporting tables examined by each.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   pipeline_overlap{threads=T}       overlap seconds / stage seconds
//   pipeline_insert_rate{threads=T}   MEdge/s through the pipelined engine
//   rehash_targeted_vs_full           full-scan tables / targeted tables
//
//   ./build/micro_pipeline --json=BENCH_pipeline.json
//   flags: --batches=N --batch_exp=E --vertices_exp=E --threads=1,2,4 --quick
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

std::vector<core::WeightedEdge> random_batch(std::uint64_t seed,
                                             std::size_t count,
                                             std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::Weight>(rng.below(1u << 16))};
  }
  return batch;
}

std::vector<unsigned> parse_thread_list(const util::Cli& cli) {
  std::vector<unsigned> threads;
  const std::string raw = cli.get("threads", "1,2,4");
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok =
        raw.substr(pos, comma == std::string::npos ? raw.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) {
      const long n = std::strtol(tok.c_str(), nullptr, 10);
      if (n > 0) threads.push_back(static_cast<unsigned>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

struct PipelineRun {
  double medges_per_s = 0.0;
  core::BatchPipelineStats stats;  // summed over batches
};

PipelineRun stream_batches(bool double_buffer, std::uint32_t num_vertices,
                           const std::vector<std::vector<core::WeightedEdge>>&
                               batches) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = num_vertices;
  cfg.double_buffer = double_buffer;
  if (double_buffer && !batches.empty()) {
    // Pin four epochs per batch so the quick grid pipelines too (auto mode
    // would run small batches as one epoch and measure nothing).
    cfg.pipeline_epoch_edges =
        static_cast<std::uint32_t>(batches.front().size() / 4);
  }
  core::DynGraphMap g(cfg);
  PipelineRun run;
  std::uint64_t total_edges = 0;
  util::Timer timer;
  for (const auto& batch : batches) {
    g.insert_edges(batch);
    const core::BatchPipelineStats& s = g.last_batch_stats();
    run.stats.epochs += s.epochs;
    run.stats.shards = s.shards;
    run.stats.stage_seconds += s.stage_seconds;
    run.stats.apply_seconds += s.apply_seconds;
    run.stats.overlap_seconds += s.overlap_seconds;
    total_edges += batch.size();
  }
  run.medges_per_s =
      util::mitems_per_second(double(total_edges), timer.seconds());
  return run;
}

void run_overlap(const bench::BenchContext& ctx,
                 const std::vector<unsigned>& threads, int vertices_exp,
                 int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  std::vector<std::vector<core::WeightedEdge>> batches;
  for (int b = 0; b < num_batches; ++b) {
    batches.push_back(random_batch(ctx.seed + b, batch_size, num_vertices));
  }

  util::Table table({"Threads", "Single-buf (MEdge/s)", "Pipelined (MEdge/s)",
                     "Stage (ms)", "Apply (ms)", "Overlap (ms)",
                     "Overlap frac"});
  for (const unsigned t : threads) {
    simt::ThreadPool::instance().resize(t);
    const PipelineRun single =
        stream_batches(false, num_vertices, batches);
    const PipelineRun piped = stream_batches(true, num_vertices, batches);
    const double overlap_frac =
        piped.stats.stage_seconds > 0.0
            ? piped.stats.overlap_seconds / piped.stats.stage_seconds
            : 0.0;
    table.add_row({std::to_string(t), util::Table::fmt(single.medges_per_s),
                   util::Table::fmt(piped.medges_per_s),
                   util::Table::fmt(piped.stats.stage_seconds * 1e3),
                   util::Table::fmt(piped.stats.apply_seconds * 1e3),
                   util::Table::fmt(piped.stats.overlap_seconds * 1e3),
                   util::Table::fmt(overlap_frac)});
    ctx.record("pipeline_insert_rate", piped.medges_per_s, "MEdge/s",
               {{"threads", std::to_string(t)},
                {"batch", "2^" + std::to_string(batch_exp)}});
    ctx.record("pipeline_overlap", overlap_frac, "fraction",
               {{"threads", std::to_string(t)},
                {"batch", "2^" + std::to_string(batch_exp)}});
  }
  simt::ThreadPool::instance().resize(0);
  ctx.emit(table, "Stage/apply overlap: " + std::to_string(num_batches) +
                      " batches of 2^" + std::to_string(batch_exp) +
                      " edges, V = 2^" + std::to_string(vertices_exp));
  bench::paper_shape_note(
      "overlap > 0 at >= 2 threads (staging hides behind apply); the "
      "1-thread pipeline degenerates and matches the single-buffer engine");
}

void run_rehash(const bench::BenchContext& ctx, int tail_exp, int hub_degree) {
  // Hub-skewed graph: 8 hubs with long chains, 2^tail_exp single-slab
  // tails — the workload where scanning every vertex to find the handful
  // of offenders is pure waste.
  std::vector<core::WeightedEdge> edges;
  const std::uint32_t tails = 1u << tail_exp;
  for (core::VertexId hub = 0; hub < 8; ++hub) {
    for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(hub_degree); ++k) {
      edges.push_back({hub, 100 + k, k});
    }
  }
  for (core::VertexId u = 8; u < tails; ++u) {
    edges.push_back({u, u + 1, 1});
  }

  core::GraphConfig cfg;
  cfg.vertex_capacity = tails + 2;
  const auto build = [&] {
    auto g = std::make_unique<core::DynGraphMap>(cfg);
    g->insert_edges(edges);
    return g;
  };
  auto targeted = build();
  auto full = build();

  util::Timer t_targeted;
  const std::uint32_t rehashed_targeted = targeted->rehash_long_chains(1.0);
  const double targeted_ms = t_targeted.seconds() * 1e3;
  util::Timer t_full;
  const std::uint32_t rehashed_full =
      full->rehash_long_chains(1.0, /*full_scan=*/true);
  const double full_ms = t_full.seconds() * 1e3;

  const auto scanned_targeted = targeted->last_rehash_stats().scanned;
  const auto scanned_full = full->last_rehash_stats().scanned;
  util::Table table({"Mode", "Tables scanned", "Rehashed", "ms"});
  table.add_row({"targeted", std::to_string(scanned_targeted),
                 std::to_string(rehashed_targeted),
                 util::Table::fmt(targeted_ms)});
  table.add_row({"full scan", std::to_string(scanned_full),
                 std::to_string(rehashed_full), util::Table::fmt(full_ms)});
  ctx.emit(table, "Run-aware rehash: " + std::to_string(tails) +
                      " vertices, 8 hubs of degree " +
                      std::to_string(hub_degree));
  ctx.record("rehash_targeted_vs_full",
             scanned_targeted > 0
                 ? double(scanned_full) / double(scanned_targeted)
                 : 0.0,
             "x fewer tables", {});
  bench::paper_shape_note(
      "targeted rehash examines only the vertices apply observed past "
      "their base slab; rehashed counts must match the full scan");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx =
      sg::bench::BenchContext::from_cli(cli, 1.0, "micro_pipeline");
  ctx.print_header("Batch pipeline: stage/apply overlap + run-aware rehash");
  const int vertices_exp = cli.get_int("vertices_exp", ctx.quick ? 15 : 17);
  const int batch_exp = cli.get_int("batch_exp", ctx.quick ? 14 : 16);
  const int num_batches = cli.get_int("batches", ctx.quick ? 4 : 8);
  sg::run_overlap(ctx, sg::parse_thread_list(cli), vertices_exp, batch_exp,
                  num_batches);
  sg::run_rehash(ctx, ctx.quick ? 12 : 14, ctx.quick ? 400 : 1000);
  ctx.write_json();
  return 0;
}
