// Shared plumbing for the table/figure benchmark binaries.
//
// Every binary prints (a) the scaling configuration in effect, (b) a table
// with the same rows/columns as the corresponding table in the paper, and
// (c) a PAPER-SHAPE note restating what qualitative relationship the paper
// reports, so the output is self-checking against EXPERIMENTS.md.
//
// Common flags: --scale=<f> multiplies dataset sizes (default 0.25 of the
// DESIGN.md base sizes, which are themselves ~32x below the paper);
// --seed=<n> reseeds generators; --quick runs a reduced grid.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace sg::bench {

struct BenchContext {
  double scale = 1.0;
  std::uint64_t seed = 42;
  bool quick = false;

  /// `default_scale` lets quadratic-cost benches (probing TC) default
  /// smaller while the update benches run the full DESIGN.md base sizes.
  static BenchContext from_cli(const util::Cli& cli,
                               double default_scale = 1.0) {
    BenchContext ctx;
    ctx.scale = cli.get_double("scale", default_scale);
    ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    ctx.quick = cli.has("quick");
    return ctx;
  }

  void print_header(const std::string& what) const {
    std::printf("== %s ==\n", what.c_str());
    std::printf("dataset scale %.3g of DESIGN.md base sizes, seed %llu%s\n\n",
                scale, static_cast<unsigned long long>(seed),
                quick ? ", quick grid" : "");
  }
};

inline core::GraphConfig graph_config(const datasets::Coo& coo,
                                      double load_factor = 0.7) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  cfg.load_factor = load_factor;
  return cfg;
}

inline void paper_shape_note(const char* note) {
  std::printf("PAPER-SHAPE: %s\n\n", note);
}

/// Plain edge views of a weighted batch (deletion inputs).
inline std::vector<core::Edge> strip_weights(
    const std::vector<core::WeightedEdge>& edges) {
  std::vector<core::Edge> out;
  out.reserve(edges.size());
  for (const auto& e : edges) out.push_back({e.src, e.dst});
  return out;
}

}  // namespace sg::bench
