// Shared plumbing for the table/figure benchmark binaries.
//
// Every binary prints (a) the scaling configuration in effect, (b) a table
// with the same rows/columns as the corresponding table in the paper, and
// (c) a PAPER-SHAPE note restating what qualitative relationship the paper
// reports, so the output is self-checking against EXPERIMENTS.md.
//
// Common flags: --scale=<f> multiplies dataset sizes (default 0.25 of the
// DESIGN.md base sizes, which are themselves ~32x below the paper);
// --seed=<n> reseeds generators; --quick runs a reduced grid;
// --json=<path> additionally writes the results as machine-readable JSON
// (schema in docs/PERF.md) so the perf trajectory can be tracked across
// PRs. Tables routed through BenchContext::emit() land in the JSON
// verbatim; scalar metrics are added with BenchContext::record().
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/core/dyn_graph.hpp"
#include "src/datasets/suite.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace sg::bench {

/// One scalar result destined for the JSON report.
struct JsonMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::map<std::string, std::string> labels;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

inline std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // NaN/Inf are not valid JSON; report them as null.
  for (const char* p = buf; *p; ++p) {
    if (*p == 'n' || *p == 'i') return "null";
  }
  return buf;
}

}  // namespace detail

struct BenchContext {
  double scale = 1.0;
  std::uint64_t seed = 42;
  bool quick = false;
  std::string bench_name;       ///< stem of the producing binary
  std::string json_path;        ///< empty = console output only

  // Captured results (mutable so `run(const BenchContext&)` signatures keep
  // working; collection is conceptually const bench plumbing).
  struct CapturedTable {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  mutable std::vector<CapturedTable> tables;
  mutable std::vector<JsonMetric> metrics;

  /// `default_scale` lets quadratic-cost benches (probing TC) default
  /// smaller while the update benches run the full DESIGN.md base sizes.
  static BenchContext from_cli(const util::Cli& cli, double default_scale = 1.0,
                               std::string bench_name = "") {
    BenchContext ctx;
    ctx.scale = cli.get_double("scale", default_scale);
    ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    ctx.quick = cli.has("quick");
    ctx.json_path = cli.get("json", "");
    ctx.bench_name = std::move(bench_name);
    return ctx;
  }

  void print_header(const std::string& what) const {
    std::printf("== %s ==\n", what.c_str());
    std::printf("dataset scale %.3g of DESIGN.md base sizes, seed %llu%s\n\n",
                scale, static_cast<unsigned long long>(seed),
                quick ? ", quick grid" : "");
  }

  /// Print the table and capture it for the JSON report.
  void emit(const util::Table& table, const std::string& title) const {
    table.print(title);
    tables.push_back({title, table.headers(), table.rows()});
  }

  /// Record one scalar metric for the JSON report.
  void record(std::string name, double value, std::string unit,
              std::map<std::string, std::string> labels = {}) const {
    metrics.push_back(
        {std::move(name), value, std::move(unit), std::move(labels)});
  }

  /// Write everything captured so far to `json_path` (no-op when --json was
  /// not given). Returns false and warns on I/O failure.
  bool write_json() const {
    if (json_path.empty()) return true;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
      return false;
    }
    std::string out = "{\n";
    out += "  \"bench\": " + detail::json_string(bench_name) + ",\n";
    out += "  \"config\": {\"scale\": " + detail::json_number(scale) +
           ", \"seed\": " + std::to_string(seed) +
           ", \"quick\": " + (quick ? "true" : "false") + "},\n";
    out += "  \"tables\": [";
    for (std::size_t t = 0; t < tables.size(); ++t) {
      const auto& table = tables[t];
      out += (t == 0 ? "\n" : ",\n");
      out += "    {\"title\": " + detail::json_string(table.title) +
             ", \"headers\": [";
      for (std::size_t c = 0; c < table.headers.size(); ++c) {
        if (c) out += ", ";
        out += detail::json_string(table.headers[c]);
      }
      out += "], \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        if (r) out += ", ";
        out += "[";
        for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
          if (c) out += ", ";
          out += detail::json_string(table.rows[r][c]);
        }
        out += "]";
      }
      out += "]}";
    }
    out += tables.empty() ? "],\n" : "\n  ],\n";
    out += "  \"metrics\": [";
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const auto& metric = metrics[m];
      out += (m == 0 ? "\n" : ",\n");
      out += "    {\"name\": " + detail::json_string(metric.name) +
             ", \"value\": " + detail::json_number(metric.value) +
             ", \"unit\": " + detail::json_string(metric.unit) +
             ", \"labels\": {";
      std::size_t l = 0;
      for (const auto& [key, value] : metric.labels) {
        if (l++) out += ", ";
        out += detail::json_string(key) + ": " + detail::json_string(value);
      }
      out += "}}";
    }
    out += metrics.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", json_path.c_str());
    return ok;
  }
};

/// For the google-benchmark micro benches: rewrite our harness-wide
/// --json=<path> flag into the library's native JSON reporter flags so one
/// flag spells "machine-readable output" across every bench binary.
inline std::vector<std::string> translate_json_flag(int argc,
                                                    const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + arg.substr(7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }
  return args;
}

inline core::GraphConfig graph_config(const datasets::Coo& coo,
                                      double load_factor = 0.7) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = coo.num_vertices;
  cfg.load_factor = load_factor;
  return cfg;
}

inline void paper_shape_note(const char* note) {
  std::printf("PAPER-SHAPE: %s\n\n", note);
}

/// Plain edge views of a weighted batch (deletion inputs).
inline std::vector<core::Edge> strip_weights(
    const std::vector<core::WeightedEdge>& edges) {
  std::vector<core::Edge> out;
  out.reserve(edges.size());
  for (const auto& e : edges) out.push_back({e.src, e.dst});
  return out;
}

}  // namespace sg::bench
