// Google-benchmark micro benchmarks for the SlabArena: bulk contiguous
// base-slab allocation vs per-table allocation (the §IV-A2 design choice),
// and dynamic slab alloc/free churn — the latter exercises the per-thread
// free-slab cache fast path.
//
//   ./build/micro_allocator --json=BENCH_allocator.json
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_main.hpp"
#include "src/memory/slab_arena.hpp"

namespace {

using sg::memory::SlabArena;

/// One bulk allocation covering N tables' base slabs (the paper's choice).
void BM_BulkBaseSlabAllocation(benchmark::State& state) {
  const auto tables = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    SlabArena arena;
    // All tables' buckets in one contiguous reservation each (graph-style:
    // a handful of large allocate_contiguous calls).
    for (std::uint32_t t = 0; t < tables; t += 512) {
      const std::uint32_t chunk = std::min<std::uint32_t>(512, tables - t);
      benchmark::DoNotOptimize(arena.allocate_contiguous(chunk, 0xFFFFFFFFu));
    }
  }
  state.SetItemsProcessed(state.iterations() * tables);
}
BENCHMARK(BM_BulkBaseSlabAllocation)->Arg(1 << 12)->Arg(1 << 14);

/// One allocation per table — the "independent cudaMalloc per hash table"
/// anti-pattern the paper avoids.
void BM_PerTableBaseSlabAllocation(benchmark::State& state) {
  const auto tables = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    SlabArena arena;
    for (std::uint32_t t = 0; t < tables; ++t) {
      benchmark::DoNotOptimize(arena.allocate_contiguous(1, 0xFFFFFFFFu));
    }
  }
  state.SetItemsProcessed(state.iterations() * tables);
}
BENCHMARK(BM_PerTableBaseSlabAllocation)->Arg(1 << 12)->Arg(1 << 14);

void BM_DynamicAllocFree(benchmark::State& state) {
  SlabArena arena;
  std::vector<sg::memory::SlabHandle> live;
  live.reserve(1024);
  std::uint32_t seed = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      live.push_back(arena.allocate(0xFFFFFFFFu, seed++));
    }
    for (auto h : live) arena.free(h);
    live.clear();
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DynamicAllocFree);

void BM_DynamicAllocSteadyState(benchmark::State& state) {
  SlabArena arena;
  // Pre-churn so the bitmap has scattered free slots (steady-state shape).
  std::vector<sg::memory::SlabHandle> persistent;
  for (int i = 0; i < 20000; ++i) persistent.push_back(arena.allocate(0, i));
  for (std::size_t i = 0; i < persistent.size(); i += 2) {
    arena.free(persistent[i]);
  }
  std::uint32_t seed = 0;
  for (auto _ : state) {
    const auto h = arena.allocate(0, seed++);
    benchmark::DoNotOptimize(h);
    arena.free(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicAllocSteadyState);

}  // namespace

int main(int argc, char** argv) {
  return sg::bench::run_google_benchmarks(argc, argv);
}
