// Table VIII: the price of keeping list-based adjacencies sorted — CSR
// segmented sort (our CUB substitute: one device-wide (segment,key) sort)
// vs faimGraph's in-place per-list sort (quadratic in degree). The paper's
// crossover: faim wins when max degree is small (road/mesh), loses
// catastrophically on scale-free hubs (soc-*, hollywood).
#include "bench/bench_common.hpp"

#include <algorithm>

#include "src/baselines/csr/csr.hpp"
#include "src/baselines/faim/faim_graph.hpp"
#include "src/sort/segmented_sort.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Dataset", "MaxDeg", "Sort CSR", "Sort faimGraph"});
  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    const auto stats = coo.degree_stats();
    double csr_ms = 0.0;
    {
      // Unsorted CSR rows, then the CUB-style segmented sort.
      baselines::Csr csr =
          baselines::Csr::from_edges(coo.num_vertices, coo.edges, /*sort=*/false);
      std::vector<std::uint64_t> offsets(csr.row_offsets().begin(),
                                         csr.row_offsets().end());
      util::Timer timer;
      sort::segmented_sort(csr.col_indices_mutable(), offsets);
      csr_ms = timer.milliseconds();
      if (!sort::segments_sorted(csr.col_indices_mutable(), offsets)) {
        std::printf("!! csr sort failed on %s\n", name.c_str());
      }
    }
    double faim_ms = 0.0;
    {
      baselines::faim::FaimGraph faim(coo.num_vertices);
      // Feed through the (unsorted, append-order) update path so adjacency
      // lists arrive in genuinely random order — bulk_build would pre-sort
      // them and hand the in-place sort its best case.
      std::vector<core::WeightedEdge> shuffled = coo.edges;
      util::Xoshiro256 rng(ctx.seed);
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
      }
      for (std::size_t start = 0; start < shuffled.size();
           start += baselines::faim::kMaxBatchSize) {
        const std::size_t len = std::min(baselines::faim::kMaxBatchSize,
                                         shuffled.size() - start);
        faim.insert_edges({shuffled.data() + start, len});
      }
      util::Timer timer;
      faim.sort_adjacency_lists();
      faim_ms = timer.milliseconds();
    }
    table.add_row({name, util::Table::fmt_int(stats.max_degree),
                   util::Table::fmt(csr_ms, 2), util::Table::fmt(faim_ms, 2)});
  }
  ctx.emit(table, "Table VIII: adjacency sort cost (ms)");
  bench::paper_shape_note(
      "faimGraph's sort beats the CSR/CUB-style sort when max degree is "
      "small (road/mesh/delaunay) and is far slower on scale-free graphs "
      "(soc-*, hollywood); sort cost is comparable to or larger than the "
      "TC times of Table VII");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table8_sort_cost");
  ctx.print_header("Table VIII: sort cost for list-based structures");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
