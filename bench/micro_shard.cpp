// micro_shard: throughput scaling of the multi-shard serving tier
// (src/shard/sharded_graph.hpp) across shard counts.
//
// Two sections, both on the synchronous serving path (the differential
// reference mode — no scheduler threads, so the series isolates the router
// plus N independent engines from conductor effects):
//
//   insert    streams random insert batches through ShardedGraph tiers of
//             1/2/4/8 shards, same workload per point. 1 shard is the
//             degenerate tier (routing still runs), so the series prices
//             the partitioning itself: routing overhead at N=1, smaller
//             per-shard dictionaries and arenas as N grows.
//
//   query     preloads each tier with the same edge set, then streams
//             edges_exist probe batches; answers scatter back to input
//             order through the router's sequence numbers, so the measured
//             rate includes the full route -> probe -> scatter round trip.
//
// Each section also reports the router's load split (max/min routed items
// per shard — 1.00 is perfectly fair) for the uniform workload.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   shard_insert_rate{shards=N}   Medges/s through insert_edges
//   shard_query_rate{shards=N}    Mprobes/s through edges_exist
//
//   ./build/micro_shard --json=BENCH_shard.json
//   flags: --batches=N --batch_exp=E --vertices_exp=E --threads=T --quick
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/shard/sharded_graph.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};

std::vector<core::WeightedEdge> random_edges(std::uint64_t seed,
                                             std::size_t count,
                                             std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::Weight>(rng.below(1u << 16))};
  }
  return batch;
}

std::vector<core::Edge> query_probes(std::uint64_t seed, std::size_t count,
                                     std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Edge> queries(count);
  for (auto& q : queries) {
    // ~half the probes miss: dst drawn from twice the insert range.
    q = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices * 2))};
  }
  return queries;
}

shard::ShardConfig tier_config(std::uint32_t shards,
                               std::uint32_t num_vertices) {
  shard::ShardConfig sc;
  sc.shard_count = shards;
  sc.graph.vertex_capacity = num_vertices;
  sc.graph.phase_scheduler = false;  // sync path: no conductor threads
  return sc;
}

std::string fairness_of(const shard::RouterStats& stats) {
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const std::uint64_t n : stats.per_shard_items) {
    lo = n < lo ? n : lo;
    hi = n > hi ? n : hi;
  }
  return lo == 0 ? "inf" : util::Table::fmt(double(hi) / double(lo));
}

void run_inserts(const bench::BenchContext& ctx, int vertices_exp,
                 int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  std::vector<std::vector<core::WeightedEdge>> batches;
  for (int b = 0; b < num_batches; ++b) {
    batches.push_back(random_edges(ctx.seed + b, batch_size, num_vertices));
  }
  const double total = double(batch_size) * num_batches;

  util::Table table(
      {"Shards", "Insert (Medges/s)", "Edges stored", "Load max/min"});
  for (const std::uint32_t shards : kShardCounts) {
    shard::ShardedGraphMap tier(tier_config(shards, num_vertices));
    util::Timer timer;
    for (const auto& batch : batches) tier.insert_edges(batch);
    const double rate = util::mitems_per_second(total, timer.seconds());
    table.add_row({std::to_string(shards), util::Table::fmt(rate),
                   std::to_string(tier.num_edges()),
                   fairness_of(tier.router_stats())});
    ctx.record("shard_insert_rate", rate, "Medges/s",
               {{"shards", std::to_string(shards)}});
  }
  ctx.emit(table, "Sharded insert scaling: " + std::to_string(num_batches) +
                      " batches of 2^" + std::to_string(batch_exp) +
                      ", V = 2^" + std::to_string(vertices_exp));
  bench::paper_shape_note(
      "shards = 1 prices the router alone; larger tiers trade a fixed "
      "routing pass for smaller per-shard dictionaries and chains");
}

void run_queries(const bench::BenchContext& ctx, int vertices_exp,
                 int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  const auto base =
      random_edges(ctx.seed, batch_size * num_batches, num_vertices);
  std::vector<std::vector<core::Edge>> probe_batches;
  for (int b = 0; b < num_batches; ++b) {
    probe_batches.push_back(
        query_probes(ctx.seed + 100 + b, batch_size, num_vertices));
  }
  const double total = double(batch_size) * num_batches;

  util::Table table({"Shards", "Query (Mprobes/s)", "Load max/min"});
  std::vector<std::uint8_t> found(batch_size);
  for (const std::uint32_t shards : kShardCounts) {
    shard::ShardedGraphMap tier(tier_config(shards, num_vertices));
    tier.insert_edges(base);
    util::Timer timer;
    for (const auto& probes : probe_batches) {
      tier.edges_exist(probes, found.data());
    }
    const double rate = util::mitems_per_second(total, timer.seconds());
    table.add_row({std::to_string(shards), util::Table::fmt(rate),
                   fairness_of(tier.router_stats())});
    ctx.record("shard_query_rate", rate, "Mprobes/s",
               {{"shards", std::to_string(shards)}});
  }
  ctx.emit(table, "Sharded edges_exist scaling: " +
                      std::to_string(num_batches) + " probe batches of 2^" +
                      std::to_string(batch_exp) + " against 2^" +
                      std::to_string(batch_exp) +
                      " x batches preloaded edges");
  bench::paper_shape_note(
      "probes route by owner(src) only — every row of u's adjacency lives "
      "on one shard — so the scatter-gather adds one pass over the answers");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "micro_shard");
  ctx.print_header("Multi-shard serving tier: insert + query scaling");
  const int vertices_exp = cli.get_int("vertices_exp", ctx.quick ? 14 : 16);
  const int batch_exp = cli.get_int("batch_exp", ctx.quick ? 12 : 14);
  const int num_batches = cli.get_int("batches", ctx.quick ? 3 : 6);
  const int threads = cli.get_int("threads", 4);
  sg::simt::ThreadPool::instance().resize(
      static_cast<unsigned>(threads > 0 ? threads : 0));
  sg::run_inserts(ctx, vertices_exp, batch_exp, num_batches);
  sg::run_queries(ctx, vertices_exp, batch_exp, num_batches);
  sg::simt::ThreadPool::instance().resize(0);
  ctx.write_json();
  return 0;
}
