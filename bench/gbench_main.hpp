// Shared main() for the google-benchmark micro benches: BENCHMARK_MAIN
// plus the harness-wide --json=<path> flag mapped onto the library's JSON
// reporter, so all bench binaries share one flag spelling.
//
//   int main(int argc, char** argv) {
//     return sg::bench::run_google_benchmarks(argc, argv);
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.hpp"

namespace sg::bench {

inline int run_google_benchmarks(int argc, char** argv) {
  auto args = translate_json_flag(argc, argv);
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& arg : args) cargs.push_back(arg.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace sg::bench
