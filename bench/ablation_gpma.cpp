// Ablation (beyond the paper's tables): GPMA — the third prior system the
// paper discusses but does not benchmark — against Hornet and ours on the
// §V-A1 batched-update workload and the edgeExist query workload. The PMA
// keeps a globally sorted edge array (O(log) queries, sorted neighbour
// ranges) at the cost of rebalancing on update; hash tables pay neither
// the sort nor the rebalance but give up sorted iteration.
#include "bench/bench_common.hpp"

#include "src/baselines/gpma/gpma_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const std::vector<std::string> names = {"road_usa", "coAuthorsDBLP",
                                          "hollywood-2009"};
  util::Table table({"Dataset", "Op", "Hornet", "GPMA", "Ours"});
  const std::size_t batch_size = 1u << 14;
  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    const auto batch = datasets::random_edge_batch(coo, batch_size, ctx.seed);

    baselines::hornet::HornetGraph hornet(coo.num_vertices);
    hornet.bulk_build(coo.edges);
    baselines::gpma::GpmaGraph gpma(coo.num_vertices);
    gpma.bulk_build(coo.edges);
    core::DynGraphMap ours(bench::graph_config(coo));
    ours.bulk_build(coo.edges);

    // --- batched insertion -------------------------------------------
    double hornet_rate, gpma_rate, ours_rate;
    {
      util::Timer t;
      hornet.insert_edges(batch);
      hornet_rate = util::mitems_per_second(double(batch.size()), t.seconds());
    }
    {
      util::Timer t;
      gpma.insert_edges(batch);
      gpma_rate = util::mitems_per_second(double(batch.size()), t.seconds());
    }
    {
      util::Timer t;
      ours.insert_edges(batch);
      ours_rate = util::mitems_per_second(double(batch.size()), t.seconds());
    }
    table.add_row({name, "insert ME/s", util::Table::fmt(hornet_rate),
                   util::Table::fmt(gpma_rate), util::Table::fmt(ours_rate)});

    // --- edgeExist probes (all structures now hold the same graph) ----
    std::vector<core::Edge> queries;
    util::Xoshiro256 rng(ctx.seed + 1);
    for (int i = 0; i < 1 << 16; ++i) {
      if (i % 2 == 0 && !coo.edges.empty()) {
        const auto& e = coo.edges[rng.below(coo.edges.size())];
        queries.push_back({e.src, e.dst});
      } else {
        queries.push_back(
            {static_cast<core::VertexId>(rng.below(coo.num_vertices)),
             static_cast<core::VertexId>(rng.below(coo.num_vertices))});
      }
    }
    auto probe_rate = [&](auto&& exists) {
      util::Timer t;
      std::uint64_t hits = 0;
      for (const auto& q : queries) hits += exists(q.src, q.dst) ? 1 : 0;
      const double rate =
          util::mitems_per_second(double(queries.size()), t.seconds());
      return hits > 0 ? rate : rate;  // keep hits live
    };
    const double hornet_q = probe_rate([&](core::VertexId u, core::VertexId v) {
      return hornet.edge_exists(u, v);  // linear scan (unsorted list)
    });
    const double gpma_q = probe_rate([&](core::VertexId u, core::VertexId v) {
      return gpma.edge_exists(u, v);  // O(log) PMA search
    });
    const double ours_q = probe_rate([&](core::VertexId u, core::VertexId v) {
      return ours.edge_exists(u, v);  // O(1) hash probe
    });
    table.add_row({name, "query MQ/s", util::Table::fmt(hornet_q),
                   util::Table::fmt(gpma_q), util::Table::fmt(ours_q)});
  }
  ctx.emit(table, "Ablation: GPMA (PMA-based) vs Hornet vs ours");
  bench::paper_shape_note(
      "expected ordering: ours fastest on both ops; GPMA queries beat "
      "Hornet's unsorted scans (O(log E) vs O(d)) but its insertions pay "
      "sort + rebalance");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "ablation_gpma");
  ctx.print_header("Ablation: GPMA baseline (extension beyond the paper)");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
