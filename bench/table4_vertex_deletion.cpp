// Table IV: vertex-deletion throughput (MVertex/s) vs batch size, averaged
// over the paper's four datasets (soc-orkut, soc-LiveJournal1, delaunay_n23,
// germany_osm), undirected — ours (Algorithm 2) vs faimGraph. The batch
// grid is scaled down alongside the datasets (paper: 2^16..2^20 on graphs
// of 3-24M vertices; here 2^10..2^14 on graphs of 8-150K vertices).
#include "bench/bench_common.hpp"

#include "src/baselines/faim/faim_graph.hpp"
#include "src/datasets/coo.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx, const std::vector<int>& batch_exps) {
  const auto names = datasets::vertex_deletion_suite_names();
  struct Rates {
    std::vector<double> faim, ours;
  };
  std::vector<Rates> per_exp(batch_exps.size());
  util::Table split({"Dataset", "faimGraph", "Ours"});

  for (const auto& name : names) {
    datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
      const std::size_t batch_size = 1ull << batch_exps[bi];
      const auto victims = datasets::random_vertex_batch(
          coo.num_vertices, batch_size, ctx.seed + bi);
      {
        baselines::faim::FaimGraph faim(coo.num_vertices, /*undirected=*/true);
        faim.bulk_build(coo.edges);
        util::Timer timer;
        faim.delete_vertices(victims);
        per_exp[bi].faim.push_back(
            util::mitems_per_second(double(victims.size()), timer.seconds()));
      }
      {
        // Undirected config: bulk_build mirrors each unique edge and
        // Algorithm 2 uses the adjacency itself to find referencing tables.
        core::GraphConfig ucfg = bench::graph_config(coo);
        ucfg.undirected = true;
        core::DynGraphMap graph(ucfg);
        graph.bulk_build(coo.unique_undirected_edges());
        util::Timer timer;
        graph.delete_vertices(victims);
        per_exp[bi].ours.push_back(
            util::mitems_per_second(double(victims.size()), timer.seconds()));
      }
      if (bi + 1 == batch_exps.size()) {
        split.add_row({name, util::Table::fmt(per_exp[bi].faim.back(), 3),
                       util::Table::fmt(per_exp[bi].ours.back(), 3)});
      }
    }
  }
  util::Table table({"Batch size", "faimGraph", "Ours"});
  for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
    table.add_row({"2^" + std::to_string(batch_exps[bi]),
                   util::Table::fmt(util::mean_of(per_exp[bi].faim), 3),
                   util::Table::fmt(util::mean_of(per_exp[bi].ours), 3)});
  }
  ctx.emit(table, 
      "Table IV: mean vertex deletion throughput (MVertex/s), 4-dataset mean");
  std::printf("\n");
  ctx.emit(split, "Per-dataset throughput at the largest batch");
  bench::paper_shape_note(
      "ours 8.9-12.2x faster than faimGraph at every batch size (hash lookup "
      "of the deleted vertex in neighbours' lists beats list scanning); "
      "Hornet has no vertex deletion");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table4_vertex_deletion");
  ctx.print_header("Table IV: batched vertex deletion (undirected)");
  const std::vector<int> exps =
      ctx.quick ? std::vector<int>{8, 10} : std::vector<int>{10, 11, 12, 13, 14};
  sg::run(ctx, exps);
  ctx.write_json();
  return 0;
}
