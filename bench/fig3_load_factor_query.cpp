// Figure 3: query performance (static triangle counting on the set
// variant) vs average chain length, for the same RMAT degree sweep as
// Figure 2. The paper finds the optimum near chain length (load factor)
// ~0.7: shorter chains waste probes across many near-empty buckets, longer
// chains pay linked-list traversal per edgeExist.
#include "bench/bench_common.hpp"

#include "src/analytics/triangle_count.hpp"
#include "src/datasets/generators.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const std::uint32_t vertices = ctx.quick ? 1u << 11 : 1u << 13;
  const std::vector<int> degree_multipliers =
      ctx.quick ? std::vector<int>{1} : std::vector<int>{1, 5, 9};
  const std::vector<double> chain_lengths =
      ctx.quick ? std::vector<double>{0.7, 3.0}
                : std::vector<double>{0.3, 0.5, 0.7, 1.0, 2.0, 3.5, 5.0};
  constexpr double kBaseDegree = 14.0;

  util::Table table({"Series(|E|)", "Chain", "TC time(ms)", "Triangles"});
  for (int mult : degree_multipliers) {
    const auto target_edges = static_cast<std::uint64_t>(
        vertices * kBaseDegree * static_cast<double>(mult));
    const datasets::Coo coo =
        datasets::make_rmat(vertices, target_edges, ctx.seed + mult);
    const std::string series = std::to_string(coo.num_edges() / 1000) + "K";
    for (double chain : chain_lengths) {
      core::DynGraphSet graph(bench::graph_config(coo, chain));
      graph.bulk_build(coo.edges);
      util::Timer timer;
      const std::uint64_t triangles = analytics::tc_slabgraph(graph);
      table.add_row({series, util::Table::fmt(chain, 1),
                     util::Table::fmt(timer.milliseconds(), 1),
                     util::Table::fmt_int(static_cast<long long>(triangles))});
    }
  }
  ctx.emit(table, "Figure 3: static TC time vs average chain length (RMAT, " +
              std::to_string(vertices) + " vertices, set variant)");
  bench::paper_shape_note(
      "TC time is minimized around chain length ~0.7 and grows once chains "
      "exceed one slab (every probe walks the chain)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "fig3_load_factor_query");
  ctx.print_header("Figure 3: load factor / chain length sweep (queries)");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
