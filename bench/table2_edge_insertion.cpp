// Table II: mean edge-insertion rate (MEdge/s) vs batch size, averaged over
// the dataset suite — Hornet vs faimGraph vs ours. Batches are random edges
// between existing vertices with duplicates allowed (§V-A1); the graph
// starts as the static dataset. faimGraph rows stop below 1M edges, exactly
// as in the paper ("faimGraph only supports batch updates of sizes < 1M").
#include "bench/bench_common.hpp"

#include <cstdlib>

#include "src/baselines/faim/faim_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/datasets/coo.hpp"
#include "src/simt/thread_pool.hpp"

namespace sg {
namespace {

/// Comma-separated --threads=1,2,4 list; empty when the flag is absent.
std::vector<unsigned> parse_thread_list(const util::Cli& cli) {
  std::vector<unsigned> threads;
  const std::string raw = cli.get("threads", "");
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok =
        raw.substr(pos, comma == std::string::npos ? raw.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) {
      const long n = std::strtol(tok.c_str(), nullptr, 10);
      if (n > 0) threads.push_back(static_cast<unsigned>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

/// SG_THREADS sweep (ROADMAP "Multi-threaded bench coverage"): re-run our
/// batched insertion across pool widths, one JSON metric series per thread
/// count, then restore the environment default.
void run_thread_sweep(const bench::BenchContext& ctx,
                      const std::vector<unsigned>& threads, int batch_exp) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Threads", "Ours (MEdge/s)"});
  const std::size_t batch_size = 1ull << batch_exp;
  for (const unsigned t : threads) {
    simt::ThreadPool::instance().resize(t);
    std::vector<double> rates;
    for (const auto& name : names) {
      const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
      const auto batch = datasets::random_edge_batch(coo, batch_size, ctx.seed);
      core::DynGraphMap ours(bench::graph_config(coo));
      ours.bulk_build(coo.edges);
      util::Timer timer;
      ours.insert_edges(batch);
      rates.push_back(
          util::mitems_per_second(double(batch_size), timer.seconds()));
    }
    const double mean = util::mean_of(rates);
    table.add_row({std::to_string(t), util::Table::fmt(mean)});
    ctx.record("ours_insert_rate_threads", mean, "MEdge/s",
               {{"threads", std::to_string(t)},
                {"batch", "2^" + std::to_string(batch_exp)}});
  }
  simt::ThreadPool::instance().resize(0);  // restore the SG_THREADS default
  ctx.emit(table, "SG_THREADS sweep: ours, batch 2^" +
                      std::to_string(batch_exp) + ", " +
                      std::to_string(names.size()) + "-dataset mean");
}

struct Rates {
  std::vector<double> hornet, faim, ours;
};

void run(const bench::BenchContext& ctx, const std::vector<int>& batch_exps) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Batch size", "Hornet", "faimGraph", "Ours"});
  util::Table split({"Dataset", "Hornet", "faimGraph", "Ours"});
  std::vector<Rates> per_exp(batch_exps.size());

  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
      const std::size_t batch_size = 1ull << batch_exps[bi];
      const auto batch =
          datasets::random_edge_batch(coo, batch_size, ctx.seed + bi);
      {
        baselines::hornet::HornetGraph hornet(coo.num_vertices);
        hornet.bulk_build(coo.edges);
        util::Timer timer;
        hornet.insert_edges(batch);
        per_exp[bi].hornet.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      if (batch_size < baselines::faim::kMaxBatchSize) {
        baselines::faim::FaimGraph faim(coo.num_vertices);
        faim.bulk_build(coo.edges);
        util::Timer timer;
        faim.insert_edges(batch);
        per_exp[bi].faim.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      {
        core::DynGraphMap ours(bench::graph_config(coo));
        ours.bulk_build(coo.edges);
        util::Timer timer;
        ours.insert_edges(batch);
        per_exp[bi].ours.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      if (bi + 1 == batch_exps.size()) {
        split.add_row({name, util::Table::fmt(per_exp[bi].hornet.back()),
                       per_exp[bi].faim.empty()
                           ? "--"
                           : util::Table::fmt(per_exp[bi].faim.back()),
                       util::Table::fmt(per_exp[bi].ours.back())});
      }
    }
  }
  for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
    const double ours_mean = util::mean_of(per_exp[bi].ours);
    table.add_row({"2^" + std::to_string(batch_exps[bi]),
                   util::Table::fmt(util::mean_of(per_exp[bi].hornet)),
                   per_exp[bi].faim.empty()
                       ? "--"
                       : util::Table::fmt(util::mean_of(per_exp[bi].faim)),
                   util::Table::fmt(ours_mean)});
    // Scalar series for the trajectory tooling (bench/compare_bench.py).
    ctx.record("ours_insert_rate", ours_mean, "MEdge/s",
               {{"batch", "2^" + std::to_string(batch_exps[bi])}});
  }
  ctx.emit(table, "Table II: mean edge insertion rates (MEdge/s), " +
              std::to_string(names.size()) + "-dataset mean");
  std::printf("\n");
  ctx.emit(split, "Per-dataset rates at the largest batch (degree-family split)");
  bench::paper_shape_note(
      "ours fastest at every batch size (paper: 5.8-14.8x over Hornet, "
      "3.4-5.4x over faimGraph); all three improve with batch size");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table2_edge_insertion");
  ctx.print_header("Table II: batched edge insertion");
  std::vector<int> exps = ctx.quick ? std::vector<int>{12, 14}
                                    : std::vector<int>{12, 13, 14, 15, 16};
  if (cli.has("max_exp")) {
    exps.clear();
    for (int e = 12; e <= cli.get_int("max_exp", 16); ++e) exps.push_back(e);
  }
  sg::run(ctx, exps);
  const auto threads = sg::parse_thread_list(cli);
  if (!threads.empty()) sg::run_thread_sweep(ctx, threads, exps.back());
  ctx.write_json();
  return 0;
}
