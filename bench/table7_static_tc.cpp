// Table VII: static triangle counting time (ms) per dataset — Hornet and
// faimGraph intersect sorted lists; ours probes edgeExist on the set
// variant. Sorting the baselines' lists happens *before* the timer, exactly
// as in the paper ("the sort ... is not counted in the results above" —
// Table VIII prices it separately).
//
// "Ours bulk" is the bulk-engine path (tc_slabgraph_bulk): ONE
// gather_neighbors wave over the whole vertex set feeds sorted-intersect —
// its in-timer slice sort is the honest price of leaving the hash layout,
// the analog of the baselines' (untimed) sort maintenance. The Vs-probe
// column gates ≥2x over the probing path in compare_bench.py.
#include "bench/bench_common.hpp"

#include "src/analytics/triangle_count.hpp"
#include "src/baselines/faim/faim_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Dataset", "Hornet", "faimGraph", "Ours", "Ours bulk",
                     "Vs-probe", "Triangles"});
  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    double hornet_ms = 0.0, faim_ms = 0.0, ours_ms = 0.0, bulk_ms = 0.0;
    std::uint64_t triangles = 0;
    {
      baselines::hornet::HornetGraph hornet(coo.num_vertices);
      hornet.bulk_build(coo.edges);
      hornet.sort_adjacency_lists();  // not timed (Table VIII prices this)
      util::Timer timer;
      triangles = analytics::tc_hornet(hornet);
      hornet_ms = timer.milliseconds();
    }
    {
      baselines::faim::FaimGraph faim(coo.num_vertices);
      faim.bulk_build(coo.edges);
      faim.sort_adjacency_lists();
      util::Timer timer;
      const std::uint64_t t = analytics::tc_faim(faim);
      faim_ms = timer.milliseconds();
      if (t != triangles) std::printf("!! faim TC mismatch on %s\n", name.c_str());
    }
    {
      core::DynGraphSet ours(bench::graph_config(coo));
      ours.bulk_build(coo.edges);
      {
        util::Timer timer;
        const std::uint64_t t = analytics::tc_slabgraph(ours);
        ours_ms = timer.milliseconds();
        if (t != triangles) {
          std::printf("!! ours TC mismatch on %s\n", name.c_str());
        }
      }
      {
        // Gather + slice sort + intersect, all inside the timer.
        util::Timer timer;
        const std::uint64_t t = analytics::tc_slabgraph_bulk(ours);
        bulk_ms = timer.milliseconds();
        if (t != triangles) {
          std::printf("!! bulk TC mismatch on %s\n", name.c_str());
        }
      }
    }
    const double vs_probe = bulk_ms > 0.0 ? ours_ms / bulk_ms : 0.0;
    table.add_row({name, util::Table::fmt(hornet_ms, 2),
                   util::Table::fmt(faim_ms, 2), util::Table::fmt(ours_ms, 2),
                   util::Table::fmt(bulk_ms, 2),
                   util::Table::fmt(vs_probe, 2) + "x",
                   util::Table::fmt_int(static_cast<long long>(triangles))});
    ctx.record("static_tc_bulk_speedup", vs_probe, "x", {{"dataset", name}});
  }
  ctx.emit(table, "Table VII: static triangle counting time (ms)");
  bench::paper_shape_note(
      "on most datasets the probing path is SLOWER than the sorted-intersect "
      "baselines (serial two-pointer walks beat per-wedge hash probes) — the "
      "paper reports the same and prices the baselines' sort in Table VIII; "
      "the bulk path closes that gap by gathering once and intersecting "
      "sorted slices (expect Vs-probe >= 2x on the denser datasets)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "table7_static_tc");
  ctx.print_header("Table VII: static triangle counting (set variant)");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
