// micro_probe: the slab-probe microbenchmark behind the SIMD rewrite.
//
// Measures one thing — how fast a single thread can answer "does this
// 128-byte slab contain key k?" — three ways:
//
//   scalar    the seed implementation: up to 30 sequential per-word
//             atomic loads with early exit on match or EMPTY;
//   portable  simt::probe_slab with the portable (auto-vectorized) backend;
//   avx2      simt::probe_slab with the AVX2 backend (when compiled in).
//
// A second section runs the same comparison end-to-end through
// SlabHashSet::contains / SlabHashMap::search, whose hot paths sit on top
// of probe_slab, by switching the probe backend at runtime.
//
//   ./build/micro_probe --json=BENCH_probe.json
//   flags: --slabs=N --queries=N --reps=N --fill=F --quick
#include <algorithm>
#include <functional>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/simt/atomics.hpp"
#include "src/simt/simd.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/slabhash/slab_set.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

struct Query {
  std::uint32_t slab;
  std::uint32_t key;
};

struct Workload {
  std::vector<memory::Slab> slabs;
  std::vector<Query> queries;
};

Workload make_workload(std::uint32_t num_slabs, std::uint32_t num_queries,
                       double fill, std::uint64_t seed) {
  Workload w;
  w.slabs.resize(num_slabs);
  util::Xoshiro256 rng(seed);
  const int used =
      std::clamp(static_cast<int>(fill * slabhash::kSetKeysPerSlab), 1,
                 slabhash::kSetKeysPerSlab);
  for (auto& slab : w.slabs) {
    for (int s = 0; s < memory::kWordsPerSlab; ++s) {
      slab.words[s] = s < used
                          ? static_cast<std::uint32_t>(rng.below(1u << 28))
                          : slabhash::kEmptyKey;
    }
  }
  w.queries.resize(num_queries);
  for (auto& q : w.queries) {
    q.slab = static_cast<std::uint32_t>(rng.below(num_slabs));
    // 50/50 guaranteed-hit vs uniform-random (almost surely a miss).
    q.key = (rng() & 1)
                ? w.slabs[q.slab].words[rng.below(static_cast<std::uint64_t>(used))]
                : static_cast<std::uint32_t>(rng.below(1u << 28));
  }
  return w;
}

/// The seed probe: sequential atomic loads with early exit — exactly the
/// loop the SIMD layer replaced (kept here as the measured baseline).
std::uint64_t run_scalar(const Workload& w) {
  std::uint64_t hits = 0;
  for (const Query& q : w.queries) {
    const memory::Slab& slab = w.slabs[q.slab];
    for (int slot = 0; slot < slabhash::kSetKeysPerSlab; ++slot) {
      const std::uint32_t k = simt::atomic_load(slab.words[slot]);
      if (k == q.key) {
        ++hits;
        break;
      }
      if (k == slabhash::kEmptyKey) break;
    }
  }
  return hits;
}

/// One vectorized compare per slab via whichever backend is active.
std::uint64_t run_masked(const Workload& w) {
  std::uint64_t hits = 0;
  for (const Query& q : w.queries) {
    const std::uint32_t mask =
        simt::match_mask(w.slabs[q.slab].words, q.key);
    hits += (mask & slabhash::kSetKeyWordsMask) != 0;
  }
  return hits;
}

double best_of(int reps, double items, const std::function<std::uint64_t()>& fn,
               std::uint64_t expected_hits) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    const std::uint64_t hits = fn();
    const double rate = util::mitems_per_second(items, timer.seconds());
    if (hits != expected_hits) {
      std::fprintf(stderr, "hit-count mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(hits),
                   static_cast<unsigned long long>(expected_hits));
      std::exit(1);
    }
    best = std::max(best, rate);
  }
  return best;
}

void run(const bench::BenchContext& ctx, const util::Cli& cli) {
  const auto num_slabs = static_cast<std::uint32_t>(
      cli.get_int("slabs", ctx.quick ? 1 << 12 : 1 << 15));
  const auto num_queries = static_cast<std::uint32_t>(
      cli.get_int("queries", ctx.quick ? 1 << 19 : 1 << 21));
  const int reps = static_cast<int>(cli.get_int("reps", ctx.quick ? 3 : 5));
  const double fill = cli.get_double("fill", 0.7);

  const Workload w = make_workload(num_slabs, num_queries, fill, ctx.seed);
  const double items = static_cast<double>(num_queries);
  const std::uint64_t expected = run_scalar(w);

  util::Table table({"Probe kernel", "Mprobes/s", "vs scalar"});
  const double scalar = best_of(reps, items, [&] { return run_scalar(w); },
                                expected);
  table.add_row({"scalar (seed loop)", util::Table::fmt(scalar), "1.00x"});
  ctx.record("probe_scalar", scalar, "Mprobes/s");

  simt::set_probe_backend(simt::ProbeBackend::kPortable);
  const double portable = best_of(reps, items, [&] { return run_masked(w); },
                                  expected);
  table.add_row({"portable mask", util::Table::fmt(portable),
                 util::Table::fmt(portable / scalar) + "x"});
  ctx.record("probe_portable", portable, "Mprobes/s",
             {{"speedup_vs_scalar", util::Table::fmt(portable / scalar)}});

  simt::set_probe_backend(simt::ProbeBackend::kSimd);
  if (simt::probe_uses_simd()) {
    const double avx2 = best_of(reps, items, [&] { return run_masked(w); },
                                expected);
    table.add_row({"avx2 mask", util::Table::fmt(avx2),
                   util::Table::fmt(avx2 / scalar) + "x"});
    ctx.record("probe_avx2", avx2, "Mprobes/s",
               {{"speedup_vs_scalar", util::Table::fmt(avx2 / scalar)}});
  } else {
    table.add_row({"avx2 mask", "--", "not compiled in"});
  }
  ctx.emit(table, "Raw slab probe (" + std::to_string(num_slabs) + " slabs, " +
                      std::to_string(num_queries) + " uniform-random queries)");
  std::printf("\n");

  // End-to-end: the same backends underneath the real SlabHash operations.
  const auto num_keys = static_cast<std::uint32_t>(ctx.quick ? 1 << 14 : 1 << 16);
  util::Xoshiro256 rng(ctx.seed + 1);
  std::vector<std::uint32_t> keys(num_keys);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(1u << 28));

  memory::SlabArena arena;
  slabhash::SlabHashSet set(
      arena, slabhash::buckets_for(num_keys, 0.7, slabhash::kSetKeysPerSlab));
  slabhash::SlabHashMap map(
      arena, slabhash::buckets_for(num_keys, 0.7, slabhash::kMapPairsPerSlab));
  for (const std::uint32_t k : keys) {
    set.insert(k);
    map.replace(k, k);
  }
  std::vector<std::uint32_t> probes = keys;
  for (std::size_t i = 0; i < probes.size(); i += 2) {
    probes[i] = static_cast<std::uint32_t>(rng.below(1u << 28));
  }

  util::Table e2e({"Operation", "portable Mop/s", "avx2 Mop/s", "avx2/portable"});
  const auto contains_all = [&] {
    std::uint64_t hits = 0;
    for (const std::uint32_t k : probes) hits += set.contains(k);
    return hits;
  };
  const auto search_all = [&] {
    std::uint64_t hits = 0;
    for (const std::uint32_t k : probes) hits += map.search(k).found;
    return hits;
  };
  const double op_items = static_cast<double>(probes.size());
  const auto run_e2e = [&](const char* name,
                           const std::function<std::uint64_t()>& fn) {
    simt::set_probe_backend(simt::ProbeBackend::kPortable);
    const std::uint64_t hits = fn();
    const double p = best_of(reps, op_items, fn, hits);
    double a = 0.0;
    simt::set_probe_backend(simt::ProbeBackend::kSimd);
    if (simt::probe_uses_simd()) a = best_of(reps, op_items, fn, hits);
    e2e.add_row({name, util::Table::fmt(p),
                 a > 0 ? util::Table::fmt(a) : "--",
                 a > 0 ? util::Table::fmt(a / p) + "x" : "--"});
    ctx.record(std::string(name) + "_portable", p, "Mop/s");
    if (a > 0) ctx.record(std::string(name) + "_avx2", a, "Mop/s");
  };
  run_e2e("set_contains", contains_all);
  run_e2e("map_search", search_all);
  ctx.emit(e2e, "End-to-end SlabHash point lookups (" +
                    std::to_string(num_keys) + " keys, load factor 0.7)");

  bench::paper_shape_note(
      "the mask kernels beat the sequential-load loop by >=2x on "
      "uniform-random queries (one wide compare vs ~fill*Bc dependent "
      "loads), mirroring the paper's warp-parallel slab compare");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "micro_probe");
  ctx.print_header("micro: slab probe kernels (scalar vs portable vs AVX2)");
  sg::run(ctx, cli);
  const std::string unused = cli.unused_keys();
  if (!unused.empty()) {
    std::fprintf(stderr, "warning: unused flags: %s\n", unused.c_str());
  }
  ctx.write_json();
  return 0;
}
