// Table III: mean edge-deletion rate (MEdge/s) vs batch size, suite mean.
// Deletion batches mix live edges (75%) with random misses, duplicated
// freely; "deletion is a simple process and does not require
// cross-duplicate checking" — which is why Hornet closes the gap here.
#include "bench/bench_common.hpp"

#include "src/baselines/faim/faim_graph.hpp"
#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/datasets/coo.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx, const std::vector<int>& batch_exps) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Batch size", "Hornet", "faimGraph", "Ours"});
  util::Table split({"Dataset", "Hornet", "faimGraph", "Ours"});
  struct Rates {
    std::vector<double> hornet, faim, ours;
  };
  std::vector<Rates> per_exp(batch_exps.size());

  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
      const std::size_t batch_size = 1ull << batch_exps[bi];
      const auto batch =
          datasets::random_deletion_batch(coo, batch_size, ctx.seed + bi);
      {
        baselines::hornet::HornetGraph hornet(coo.num_vertices);
        hornet.bulk_build(coo.edges);
        util::Timer timer;
        hornet.delete_edges(batch);
        per_exp[bi].hornet.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      if (batch_size < baselines::faim::kMaxBatchSize) {
        baselines::faim::FaimGraph faim(coo.num_vertices);
        faim.bulk_build(coo.edges);
        util::Timer timer;
        faim.delete_edges(batch);
        per_exp[bi].faim.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      {
        core::DynGraphMap ours(bench::graph_config(coo));
        ours.bulk_build(coo.edges);
        util::Timer timer;
        ours.delete_edges(batch);
        per_exp[bi].ours.push_back(
            util::mitems_per_second(double(batch_size), timer.seconds()));
      }
      if (bi + 1 == batch_exps.size()) {
        split.add_row({name, util::Table::fmt(per_exp[bi].hornet.back()),
                       per_exp[bi].faim.empty()
                           ? "--"
                           : util::Table::fmt(per_exp[bi].faim.back()),
                       util::Table::fmt(per_exp[bi].ours.back())});
      }
    }
  }
  for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
    table.add_row({"2^" + std::to_string(batch_exps[bi]),
                   util::Table::fmt(util::mean_of(per_exp[bi].hornet)),
                   per_exp[bi].faim.empty()
                       ? "--"
                       : util::Table::fmt(util::mean_of(per_exp[bi].faim)),
                   util::Table::fmt(util::mean_of(per_exp[bi].ours))});
  }
  ctx.emit(table, "Table III: mean edge deletion rates (MEdge/s), " +
              std::to_string(names.size()) + "-dataset mean");
  std::printf("\n");
  ctx.emit(split, "Per-dataset rates at the largest batch (degree-family split)");
  bench::paper_shape_note(
      "ours far ahead at small batches (~7x over Hornet at 2^16), Hornet "
      "converges to parity at the largest batch; ours 3.6-7.8x over faim");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table3_edge_deletion");
  ctx.print_header("Table III: batched edge deletion");
  std::vector<int> exps = ctx.quick ? std::vector<int>{12, 14}
                                    : std::vector<int>{12, 13, 14, 15, 16};
  if (cli.has("max_exp")) {
    exps.clear();
    for (int e = 12; e <= cli.get_int("max_exp", 16); ++e) exps.push_back(e);
  }
  sg::run(ctx, exps);
  ctx.write_json();
  return 0;
}
