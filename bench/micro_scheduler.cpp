// micro_scheduler: the phase scheduler's mixed ingest/analytics throughput
// and its phase-switch overhead.
//
// Two sections:
//
//   mixed     preloads a graph, then streams insert batches (ingest
//             submitters) and edges_exist batches (analytics submitters)
//             through the scheduled submit_* API from concurrent threads,
//             at several pool widths — the DynoGraph-style serving shape
//             that is UNSAFE on the synchronous API without a caller-side
//             lock. Reports combined Mop/s, the serialized one-thread
//             baseline (sync calls back to back: what a correct caller had
//             to do before the scheduler), and the schedule stats
//             (phases, switches, coalesced submissions, fence wait).
//
//   switch    alternates single tiny mutation / query submissions from one
//             thread, each .get() before the next — the worst case: every
//             submission pays a phase switch and nothing coalesces.
//             Reports the mean cost of a switch (fence + conductor
//             hand-off), the price of fine-grained interleaving the mixed
//             section's coalescing avoids.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   scheduled_mixed_rate{threads=T}   Mop/s through the scheduled API
//
//   ./build/micro_scheduler --json=BENCH_scheduler.json
//   flags: --batches=N --batch_exp=E --vertices_exp=E --threads=1,2,4 --quick
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

std::vector<core::WeightedEdge> random_edges(std::uint64_t seed,
                                             std::size_t count,
                                             std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::Weight>(rng.below(1u << 16))};
  }
  return batch;
}

std::vector<core::Edge> query_probes(std::uint64_t seed, std::size_t count,
                                     std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Edge> queries(count);
  for (auto& q : queries) {
    q = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices * 2))};
  }
  return queries;
}

std::vector<unsigned> parse_thread_list(const util::Cli& cli) {
  std::vector<unsigned> threads;
  const std::string raw = cli.get("threads", "1,2,4");
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok =
        raw.substr(pos, comma == std::string::npos ? raw.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) {
      const long n = std::strtol(tok.c_str(), nullptr, 10);
      if (n > 0) threads.push_back(static_cast<unsigned>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

void run_mixed(const bench::BenchContext& ctx,
               const std::vector<unsigned>& threads, int vertices_exp,
               int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  const auto base = random_edges(ctx.seed, batch_size * 2, num_vertices);
  // Two ingest + two analytics submitters, num_batches batches each.
  constexpr int kIngest = 2;
  constexpr int kAnalytics = 2;
  std::vector<std::vector<core::WeightedEdge>> ingest_batches;
  std::vector<std::vector<core::Edge>> query_batches;
  for (int s = 0; s < kIngest * num_batches; ++s) {
    ingest_batches.push_back(
        random_edges(ctx.seed + 10 + s, batch_size, num_vertices));
  }
  for (int s = 0; s < kAnalytics * num_batches; ++s) {
    query_batches.push_back(
        query_probes(ctx.seed + 500 + s, batch_size, num_vertices));
  }
  const double total_ops =
      double(batch_size) * num_batches * (kIngest + kAnalytics);

  util::Table table({"Threads", "Scheduled (Mop/s)", "Serialized (Mop/s)",
                     "Phases (M/Q)", "Switches", "Coalesced",
                     "Fence (ms)"});
  for (const unsigned t : threads) {
    simt::ThreadPool::instance().resize(t);
    core::GraphConfig cfg;
    cfg.vertex_capacity = num_vertices;

    // Scheduled: concurrent submitters, the scheduler fences the phases.
    double scheduled_rate = 0.0;
    core::PhaseScheduleStats stats;
    {
      core::DynGraphMap g(cfg);
      g.insert_edges(base);
      util::Timer timer;
      std::vector<std::thread> submitters;
      for (int s = 0; s < kIngest; ++s) {
        submitters.emplace_back([&, s] {
          for (int b = 0; b < num_batches; ++b) {
            g.submit_insert(ingest_batches[s * num_batches + b]).get();
          }
        });
      }
      for (int s = 0; s < kAnalytics; ++s) {
        submitters.emplace_back([&, s] {
          for (int b = 0; b < num_batches; ++b) {
            g.submit_edges_exist(query_batches[s * num_batches + b]).get();
          }
        });
      }
      for (auto& th : submitters) th.join();
      g.schedule_drain();
      scheduled_rate = util::mitems_per_second(total_ops, timer.seconds());
      stats = g.last_schedule_stats();
    }

    // Serialized baseline: the same batches back to back on one thread —
    // the only safe way to interleave the two kinds without the scheduler.
    double serialized_rate = 0.0;
    {
      core::DynGraphMap g(cfg);
      g.insert_edges(base);
      std::vector<std::uint8_t> found(batch_size);
      util::Timer timer;
      for (int b = 0; b < num_batches; ++b) {
        for (int s = 0; s < kIngest; ++s) {
          g.insert_edges(ingest_batches[s * num_batches + b]);
        }
        for (int s = 0; s < kAnalytics; ++s) {
          g.edges_exist(query_batches[s * num_batches + b], found.data());
        }
      }
      serialized_rate = util::mitems_per_second(total_ops, timer.seconds());
    }

    table.add_row({std::to_string(t), util::Table::fmt(scheduled_rate),
                   util::Table::fmt(serialized_rate),
                   std::to_string(stats.mutation_phases) + "/" +
                       std::to_string(stats.query_phases),
                   std::to_string(stats.phase_switches),
                   std::to_string(stats.coalesced_batches),
                   util::Table::fmt(stats.fence_wait_seconds * 1e3)});
    ctx.record("scheduled_mixed_rate", scheduled_rate, "Mop/s",
               {{"threads", std::to_string(t)},
                {"batch", "2^" + std::to_string(batch_exp)}});
  }
  simt::ThreadPool::instance().resize(0);
  ctx.emit(table, "Scheduled mixed ingest/analytics: " +
                      std::to_string(kIngest) + " ingest + " +
                      std::to_string(kAnalytics) + " analytics submitters, " +
                      std::to_string(num_batches) + " batches of 2^" +
                      std::to_string(batch_exp) + ", V = 2^" +
                      std::to_string(vertices_exp));
  bench::paper_shape_note(
      "the scheduler admits concurrent mixed submitters safely (the "
      "synchronous API would race); coalesced > 0 shows small submissions "
      "sharing phases instead of each paying a fence");
}

void run_switch_overhead(const bench::BenchContext& ctx, int num_pairs) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = 1024;
  core::DynGraphMap g(cfg);
  g.insert_edges(random_edges(ctx.seed, 4096, 1024));

  // Worst case: strict alternation, one tiny submission per phase, every
  // future awaited — no coalescing possible, one switch per submission.
  util::Timer timer;
  for (int i = 0; i < num_pairs; ++i) {
    g.submit_insert({{static_cast<core::VertexId>(i % 1024),
                      static_cast<core::VertexId>((i + 1) % 1024),
                      static_cast<core::Weight>(i)}})
        .get();
    g.submit_edges_exist({{static_cast<core::VertexId>(i % 1024),
                           static_cast<core::VertexId>((i + 1) % 1024)}})
        .get();
  }
  const double seconds = timer.seconds();
  g.schedule_drain();
  const core::PhaseScheduleStats stats = g.last_schedule_stats();
  const double us_per_switch =
      stats.phase_switches == 0
          ? 0.0
          : seconds * 1e6 / double(stats.phase_switches);

  util::Table table({"Pairs", "Switches", "Fence (ms)", "us/switch"});
  table.add_row({std::to_string(num_pairs),
                 std::to_string(stats.phase_switches),
                 util::Table::fmt(stats.fence_wait_seconds * 1e3),
                 util::Table::fmt(us_per_switch)});
  ctx.emit(table, "Phase-switch overhead: alternating 1-edge submissions");
  ctx.record("phase_switch_cost_us", us_per_switch, "us", {});
  bench::paper_shape_note(
      "strict alternation pays ~2 switches per op pair; batched or bursty "
      "submission amortizes the fence away (mixed section's coalesced "
      "column)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx =
      sg::bench::BenchContext::from_cli(cli, 1.0, "micro_scheduler");
  ctx.print_header(
      "Phase scheduler: mixed ingest/analytics throughput + switch "
      "overhead");
  const int vertices_exp = cli.get_int("vertices_exp", ctx.quick ? 14 : 16);
  const int batch_exp = cli.get_int("batch_exp", ctx.quick ? 12 : 14);
  const int num_batches = cli.get_int("batches", ctx.quick ? 3 : 6);
  sg::run_mixed(ctx, sg::parse_thread_list(cli), vertices_exp, batch_exp,
                num_batches);
  sg::run_switch_overhead(ctx, ctx.quick ? 100 : 400);
  ctx.write_json();
  return 0;
}
