// micro_scheduler: the phase scheduler's mixed ingest/analytics throughput
// and its phase-switch overhead.
//
// Two sections:
//
//   mixed     preloads a graph, then streams insert batches (ingest
//             submitters) and edges_exist batches (analytics submitters)
//             through the scheduled submit_* API from concurrent threads,
//             at several pool widths — the DynoGraph-style serving shape
//             that is UNSAFE on the synchronous API without a caller-side
//             lock. Reports combined Mop/s, the serialized one-thread
//             baseline (sync calls back to back: what a correct caller had
//             to do before the scheduler), and the schedule stats
//             (phases, switches, coalesced submissions, fence wait).
//
//   switch    alternates single tiny mutation / query submissions from one
//             thread, each .get() before the next — the worst case: every
//             submission pays a phase switch and nothing coalesces.
//             Reports the mean cost of a switch (fence + conductor
//             hand-off), the price of fine-grained interleaving the mixed
//             section's coalescing avoids.
//
//   backpressure  open-loop overload (submitters fire without pacing)
//             against the four admission-control modes: unbounded, bounded
//             kBlock, kReject, kShedOldestQueries. Reports p50/p99/p999
//             per-submission latency plus blocked/rejected/shed/max-depth
//             counters — recorded in JSON but NOT gated (latency on a
//             shared box is noisy; see compare_bench.py).
//
// JSON metrics (tracked by bench/compare_bench.py):
//   scheduled_mixed_rate{threads=T}   Mop/s through the scheduled API
//   scheduler_latency_p{50,99,999}_us_MODE, scheduler_queue_depth_MODE,
//   scheduler_{blocked_ms,rejected,shed}_MODE   recorded, ungated
//
//   ./build/micro_scheduler --json=BENCH_scheduler.json
//   flags: --batches=N --batch_exp=E --vertices_exp=E --threads=1,2,4 --quick
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

std::vector<core::WeightedEdge> random_edges(std::uint64_t seed,
                                             std::size_t count,
                                             std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::Weight>(rng.below(1u << 16))};
  }
  return batch;
}

std::vector<core::Edge> query_probes(std::uint64_t seed, std::size_t count,
                                     std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Edge> queries(count);
  for (auto& q : queries) {
    q = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices * 2))};
  }
  return queries;
}

std::vector<unsigned> parse_thread_list(const util::Cli& cli) {
  std::vector<unsigned> threads;
  const std::string raw = cli.get("threads", "1,2,4");
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok =
        raw.substr(pos, comma == std::string::npos ? raw.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) {
      const long n = std::strtol(tok.c_str(), nullptr, 10);
      if (n > 0) threads.push_back(static_cast<unsigned>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

void run_mixed(const bench::BenchContext& ctx,
               const std::vector<unsigned>& threads, int vertices_exp,
               int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  const auto base = random_edges(ctx.seed, batch_size * 2, num_vertices);
  // Two ingest + two analytics submitters, num_batches batches each.
  constexpr int kIngest = 2;
  constexpr int kAnalytics = 2;
  std::vector<std::vector<core::WeightedEdge>> ingest_batches;
  std::vector<std::vector<core::Edge>> query_batches;
  for (int s = 0; s < kIngest * num_batches; ++s) {
    ingest_batches.push_back(
        random_edges(ctx.seed + 10 + s, batch_size, num_vertices));
  }
  for (int s = 0; s < kAnalytics * num_batches; ++s) {
    query_batches.push_back(
        query_probes(ctx.seed + 500 + s, batch_size, num_vertices));
  }
  const double total_ops =
      double(batch_size) * num_batches * (kIngest + kAnalytics);

  util::Table table({"Threads", "Scheduled (Mop/s)", "Serialized (Mop/s)",
                     "Phases (M/Q)", "Switches", "Coalesced",
                     "Fence (ms)"});
  for (const unsigned t : threads) {
    simt::ThreadPool::instance().resize(t);
    core::GraphConfig cfg;
    cfg.vertex_capacity = num_vertices;

    // Scheduled: concurrent submitters, the scheduler fences the phases.
    double scheduled_rate = 0.0;
    core::PhaseScheduleStats stats;
    {
      core::DynGraphMap g(cfg);
      g.insert_edges(base);
      util::Timer timer;
      std::vector<std::thread> submitters;
      for (int s = 0; s < kIngest; ++s) {
        submitters.emplace_back([&, s] {
          for (int b = 0; b < num_batches; ++b) {
            g.submit_insert(ingest_batches[s * num_batches + b]).get();
          }
        });
      }
      for (int s = 0; s < kAnalytics; ++s) {
        submitters.emplace_back([&, s] {
          for (int b = 0; b < num_batches; ++b) {
            g.submit_edges_exist(query_batches[s * num_batches + b]).get();
          }
        });
      }
      for (auto& th : submitters) th.join();
      g.schedule_drain();
      scheduled_rate = util::mitems_per_second(total_ops, timer.seconds());
      stats = g.last_schedule_stats();
    }

    // Serialized baseline: the same batches back to back on one thread —
    // the only safe way to interleave the two kinds without the scheduler.
    double serialized_rate = 0.0;
    {
      core::DynGraphMap g(cfg);
      g.insert_edges(base);
      std::vector<std::uint8_t> found(batch_size);
      util::Timer timer;
      for (int b = 0; b < num_batches; ++b) {
        for (int s = 0; s < kIngest; ++s) {
          g.insert_edges(ingest_batches[s * num_batches + b]);
        }
        for (int s = 0; s < kAnalytics; ++s) {
          g.edges_exist(query_batches[s * num_batches + b], found.data());
        }
      }
      serialized_rate = util::mitems_per_second(total_ops, timer.seconds());
    }

    table.add_row({std::to_string(t), util::Table::fmt(scheduled_rate),
                   util::Table::fmt(serialized_rate),
                   std::to_string(stats.mutation_phases) + "/" +
                       std::to_string(stats.query_phases),
                   std::to_string(stats.phase_switches),
                   std::to_string(stats.coalesced_batches),
                   util::Table::fmt(stats.fence_wait_seconds * 1e3)});
    ctx.record("scheduled_mixed_rate", scheduled_rate, "Mop/s",
               {{"threads", std::to_string(t)},
                {"batch", "2^" + std::to_string(batch_exp)}});
  }
  simt::ThreadPool::instance().resize(0);
  ctx.emit(table, "Scheduled mixed ingest/analytics: " +
                      std::to_string(kIngest) + " ingest + " +
                      std::to_string(kAnalytics) + " analytics submitters, " +
                      std::to_string(num_batches) + " batches of 2^" +
                      std::to_string(batch_exp) + ", V = 2^" +
                      std::to_string(vertices_exp));
  bench::paper_shape_note(
      "the scheduler admits concurrent mixed submitters safely (the "
      "synchronous API would race); coalesced > 0 shows small submissions "
      "sharing phases instead of each paying a fence");
}

// ---------------------------------------------------------------------------
// Backpressure: open-loop overload with and without bounded queues
// ---------------------------------------------------------------------------

double percentile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(q * double(sorted_us.size()));
  if (idx >= sorted_us.size()) idx = sorted_us.size() - 1;
  return sorted_us[idx];
}

/// Open-loop mixed load: submitters fire without pacing (a sliding window
/// of outstanding futures keeps memory bounded and measures latency close
/// to actual resolution), so the queue is permanently overloaded. Reports
/// p50/p99/p999 per-submission latency (submit -> future resolved) and the
/// admission-control counters across policies:
///
///   unbounded   the historical behavior: queue grows without limit;
///   bounded     max_pending_submissions + kBlock: submitters absorb the
///               overload as blocked_ns, queue depth stays capped;
///   reject      kReject: overload becomes typed SubmitRejected errors;
///   shed        kShedOldestQueries: overload evicts stale analytics,
///               mutations always land.
///
/// Latency series are recorded but NOT gated (lower-is-better and noisy on
/// a 1-vCPU box; see compare_bench.py UNGATED_NOISY_METRICS).
void run_backpressure(const bench::BenchContext& ctx, int vertices_exp,
                      int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size =
      std::max<std::size_t>(64, (std::size_t{1} << batch_exp) / 16);
  const int per_submitter = num_batches * 8;
  // Analytics-heavy mix: mutation phases are the slow ones, so an even mix
  // fills the bounded queue with mutations alone and the shed policy never
  // finds a query to evict. Three analytics submitters keep queries resident
  // in the queue when overload hits.
  constexpr int kIngest = 1;
  constexpr int kAnalytics = 3;
  // Small per-submitter window: each submitter keeps up to kWindow futures
  // outstanding before reaping the oldest. 4 submitters x 4 outstanding vs a
  // queue cap of 4 is still ~4x overload, but reaping paces the flood enough
  // that the conductor actually interleaves — an infinite-rate burst just
  // freezes the first queue-full snapshot for the whole run.
  constexpr std::size_t kWindow = 4;  // outstanding futures per submitter
  // Analytics arrive in bursts wider than the queue cap, with a short gap
  // between bursts — the bursty-dashboard shape kShedOldestQueries exists
  // for: the tail of a burst evicts the stale head instead of stalling.
  constexpr int kQueryBurst = 6;

  struct Mode {
    const char* key;
    core::BackpressurePolicy policy;
    std::uint32_t cap;
  };
  const Mode modes[] = {
      {"unbounded", core::BackpressurePolicy::kBlock, 0},
      {"bounded", core::BackpressurePolicy::kBlock, 4},
      {"reject", core::BackpressurePolicy::kReject, 4},
      {"shed", core::BackpressurePolicy::kShedOldestQueries, 4},
  };

  util::Table table({"Mode", "p50 (us)", "p99 (us)", "p999 (us)",
                     "Blocked (ms)", "Rejected", "Shed", "Max depth"});
  simt::ThreadPool::instance().resize(4);
  for (const Mode& mode : modes) {
    core::GraphConfig cfg;
    cfg.vertex_capacity = num_vertices;
    cfg.max_pending_submissions = mode.cap;
    cfg.backpressure = mode.policy;

    std::vector<double> latencies_us;
    core::PhaseScheduleStats stats;
    {
      core::DynGraphMap g(cfg);
      g.insert_edges(random_edges(ctx.seed, batch_size * 2, num_vertices));
      std::vector<std::vector<double>> per_thread(kIngest + kAnalytics);
      std::vector<std::thread> submitters;
      for (int s = 0; s < kIngest + kAnalytics; ++s) {
        submitters.emplace_back([&, s] {
          const bool ingest = s < kIngest;
          using Clock = std::chrono::steady_clock;
          std::vector<std::pair<Clock::time_point,
                                std::future<std::uint64_t>>> mut_window;
          std::vector<std::pair<Clock::time_point,
                                std::future<std::vector<std::uint8_t>>>>
              query_window;
          const auto settle = [&](bool all) {
            // Drain the oldest outstanding futures (FIFO: they resolve in
            // submission order), stamping resolution latency.
            while (mut_window.size() > (all ? 0 : kWindow)) {
              auto& [t0, f] = mut_window.front();
              try {
                f.get();
                per_thread[s].push_back(
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              t0)
                        .count());
              } catch (const core::SubmitRejected&) {
              } catch (const core::PartialBatchError&) {
              }
              mut_window.erase(mut_window.begin());
            }
            while (query_window.size() > (all ? 0 : kWindow)) {
              auto& [t0, f] = query_window.front();
              try {
                f.get();
                per_thread[s].push_back(
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              t0)
                        .count());
              } catch (const core::SubmitRejected&) {
              }
              query_window.erase(query_window.begin());
            }
          };
          for (int b = 0; b < per_submitter; ++b) {
            if (ingest) {
              auto batch = random_edges(ctx.seed + 17 + s * 1000 + b,
                                        batch_size, num_vertices);
              const auto t0 = Clock::now();
              mut_window.emplace_back(t0, g.submit_insert(std::move(batch)));
            } else {
              for (int q = 0; q < kQueryBurst; ++q) {
                auto probes =
                    query_probes(ctx.seed + 900 + s * 10000 + b * 16 + q,
                                 batch_size, num_vertices);
                const auto t0 = Clock::now();
                query_window.emplace_back(
                    t0, g.submit_edges_exist(std::move(probes)));
              }
            }
            settle(/*all=*/false);
            if (!ingest) {
              std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
          }
          settle(/*all=*/true);
        });
      }
      for (auto& th : submitters) th.join();
      g.schedule_drain();
      stats = g.last_schedule_stats();
      for (auto& v : per_thread) {
        latencies_us.insert(latencies_us.end(), v.begin(), v.end());
      }
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const double p50 = percentile_us(latencies_us, 0.50);
    const double p99 = percentile_us(latencies_us, 0.99);
    const double p999 = percentile_us(latencies_us, 0.999);
    const double blocked_ms = double(stats.blocked_ns) * 1e-6;

    table.add_row({mode.key, util::Table::fmt(p50), util::Table::fmt(p99),
                   util::Table::fmt(p999), util::Table::fmt(blocked_ms),
                   std::to_string(stats.rejected_submissions),
                   std::to_string(stats.shed_queries),
                   std::to_string(stats.max_queue_depth)});
    const std::string suffix = std::string("_") + mode.key;
    ctx.record("scheduler_latency_p50_us" + suffix, p50, "us", {});
    ctx.record("scheduler_latency_p99_us" + suffix, p99, "us", {});
    ctx.record("scheduler_latency_p999_us" + suffix, p999, "us", {});
    ctx.record("scheduler_queue_depth" + suffix,
               double(stats.max_queue_depth), "submissions", {});
    if (mode.cap != 0) {
      ctx.record("scheduler_blocked_ms" + suffix, blocked_ms, "ms", {});
      ctx.record("scheduler_rejected" + suffix,
                 double(stats.rejected_submissions), "submissions", {});
      ctx.record("scheduler_shed" + suffix, double(stats.shed_queries),
                 "submissions", {});
    }
  }
  simt::ThreadPool::instance().resize(0);
  ctx.emit(table,
           "Open-loop overload: per-submission latency percentiles and "
           "admission-control counters by backpressure policy (cap 4)");
  bench::paper_shape_note(
      "bounded queues trade unbounded latency for explicit backpressure: "
      "kBlock converts overload to submitter blocked_ns at capped depth, "
      "kReject/kShed convert it to typed, countable refusals");
}

void run_switch_overhead(const bench::BenchContext& ctx, int num_pairs) {
  core::GraphConfig cfg;
  cfg.vertex_capacity = 1024;
  core::DynGraphMap g(cfg);
  g.insert_edges(random_edges(ctx.seed, 4096, 1024));

  // Worst case: strict alternation, one tiny submission per phase, every
  // future awaited — no coalescing possible, one switch per submission.
  util::Timer timer;
  for (int i = 0; i < num_pairs; ++i) {
    g.submit_insert({{static_cast<core::VertexId>(i % 1024),
                      static_cast<core::VertexId>((i + 1) % 1024),
                      static_cast<core::Weight>(i)}})
        .get();
    g.submit_edges_exist({{static_cast<core::VertexId>(i % 1024),
                           static_cast<core::VertexId>((i + 1) % 1024)}})
        .get();
  }
  const double seconds = timer.seconds();
  g.schedule_drain();
  const core::PhaseScheduleStats stats = g.last_schedule_stats();
  const double us_per_switch =
      stats.phase_switches == 0
          ? 0.0
          : seconds * 1e6 / double(stats.phase_switches);

  util::Table table({"Pairs", "Switches", "Fence (ms)", "us/switch"});
  table.add_row({std::to_string(num_pairs),
                 std::to_string(stats.phase_switches),
                 util::Table::fmt(stats.fence_wait_seconds * 1e3),
                 util::Table::fmt(us_per_switch)});
  ctx.emit(table, "Phase-switch overhead: alternating 1-edge submissions");
  ctx.record("phase_switch_cost_us", us_per_switch, "us", {});
  bench::paper_shape_note(
      "strict alternation pays ~2 switches per op pair; batched or bursty "
      "submission amortizes the fence away (mixed section's coalesced "
      "column)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx =
      sg::bench::BenchContext::from_cli(cli, 1.0, "micro_scheduler");
  ctx.print_header(
      "Phase scheduler: mixed ingest/analytics throughput + switch "
      "overhead");
  const int vertices_exp = cli.get_int("vertices_exp", ctx.quick ? 14 : 16);
  const int batch_exp = cli.get_int("batch_exp", ctx.quick ? 12 : 14);
  const int num_batches = cli.get_int("batches", ctx.quick ? 3 : 6);
  sg::run_mixed(ctx, sg::parse_thread_list(cli), vertices_exp, batch_exp,
                num_batches);
  sg::run_backpressure(ctx, vertices_exp, batch_exp, num_batches);
  sg::run_switch_overhead(ctx, ctx.quick ? 100 : 400);
  ctx.write_json();
  return 0;
}
