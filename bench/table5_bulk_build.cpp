// Table V: bulk-build elapsed time (ms) per dataset, Hornet vs ours.
// Bulk build inserts the whole COO in one batch with degrees known a priori
// (§V-B1). Hornet pays a global sort + dedup; ours sizes buckets from the
// degrees and runs one Algorithm-1 launch.
#include "bench/bench_common.hpp"

#include "src/baselines/hornet/hornet_graph.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const auto names = ctx.quick ? datasets::small_suite_names()
                               : datasets::suite_names();
  util::Table table({"Dataset", "|V|", "|E|", "Hornet", "Ours", "Speedup"});
  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    double hornet_ms = 0.0;
    {
      baselines::hornet::HornetGraph hornet(coo.num_vertices);
      util::Timer timer;
      hornet.bulk_build(coo.edges);
      hornet_ms = timer.milliseconds();
    }
    double ours_ms = 0.0;
    {
      core::DynGraphMap ours(bench::graph_config(coo));
      util::Timer timer;
      ours.bulk_build(coo.edges);
      ours_ms = timer.milliseconds();
    }
    table.add_row({name, util::Table::fmt_int(coo.num_vertices),
                   util::Table::fmt_int(static_cast<long long>(coo.num_edges())),
                   util::Table::fmt(hornet_ms, 3), util::Table::fmt(ours_ms, 3),
                   util::Table::fmt(hornet_ms / ours_ms, 1) + "x"});
  }
  ctx.emit(table, "Table V: bulk build elapsed time (ms)");
  bench::paper_shape_note(
      "ours 2-30x faster across the suite; Hornet's gap comes from global "
      "sorting + duplicate checking (45% of its time on hollywood-2009)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table5_bulk_build");
  ctx.print_header("Table V: bulk build");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
