#!/usr/bin/env python3
"""Perf-trajectory gate: diff consecutive BENCH_pr*.json points.

Each PR checks in a BENCH_pr<N>.json trajectory point (schema in
docs/PERF.md: {"pr": N, "benches": {<bench>: {"metrics": [...],
"tables": [...]}}}). This script lines the points up by PR number and fails
(exit 1) when any NAMED metric drops by more than the threshold between two
consecutive points. All tracked metrics are higher-is-better rates.

Usage:
    python3 bench/compare_bench.py [--threshold=0.10] [--metric=NAME ...] \
        BENCH_pr1.json BENCH_pr2.json ...

With no --metric flags the default set below is used. A metric absent from
either point of a pair is reported and skipped (older points predate newer
series), so adding metrics never breaks the gate retroactively.

Most tracked metrics are noisy rates where only a sustained drop matters;
auto_rehash_triggers is different — a deterministic COUNT from a pinned
workload (fixed seed, shards, epochs). Any change to it means the policy's
behavior changed, which is exactly what the gate should catch: a PR that
intentionally alters trigger behavior re-baselines by checking in its new
value with the justification in the bench description.

Values are compared per series: a metric name plus its label map (e.g.
ours_insert_rate{batch=2^14}) must match on both sides. For points that
predate the ours_insert_rate metric series, the same series is derived from
the "Ours" column of the Table II table.
"""

import json
import sys

DEFAULT_METRICS = [
    "probe_portable",
    "probe_avx2",
    "ours_insert_rate",
    "pipeline_insert_rate",
    "rehash_targeted_vs_full",
    "query_rate",
    "merge_free_insert_rate",
    "auto_rehash_triggers",
    "scheduled_mixed_rate",
    # micro_analytics (PR 7): bulk-wave traversal and TC throughputs plus
    # the delta pipeline's per-batch rate (flat across graph sizes by
    # design — a drop means the epoch cost picked up a graph-sized term).
    "bfs_rate",
    "static_tc_rate",
    "dynamic_tc_delta_rate",
    # Acceptance ratios for the bulk/delta paths (table7 / table9): both
    # gate >= 2x in the PR 7 criteria, so a sustained slide matters.
    "static_tc_bulk_speedup",
    "dynamic_tc_incr_speedup",
    # micro_persist (PR 8): durability-layer rates — snapshot serialize /
    # restore, write-ahead journal append (per sync mode), and journal
    # replay into a cold graph.
    "snapshot_rate",
    "restore_rate",
    "journal_append_rate",
    "recovery_replay_rate",
    # micro_stream (PR 9): sliding-window replay throughput (per batch
    # mode) and steady-state memory flatness. stream_epoch_rate gates the
    # whole ingest+age+compact cycle; steady_chunk_flatness is min/max live
    # arena chunks over the steady tail (1.0 = perfectly flat), inverted so
    # higher-is-better like every other gated metric — a drop means chunks
    # trend with ingested volume instead of the window.
    "stream_epoch_rate",
    "steady_chunk_flatness",
    # micro_shard (PR 10): multi-shard serving-tier throughput, one series
    # per shard count (the {shards} label) — insert through the batch
    # router and edges_exist through route -> probe -> scatter.
    "shard_insert_rate",
    "shard_query_rate",
]

# Recorded but NOT gated: stage/apply overlap on the 1-vCPU capture box is
# scheduler-quantum interleaving and swings 0.0-0.38 run-to-run for an
# unchanged binary (docs/PERF.md "One-vCPU caveat"; ROADMAP "Wider-box
# validation"). Judge trajectory moves on the rate series; re-add these to
# the gate once points are captured on a real multi-core box.
UNGATED_NOISY_METRICS = [
    "pipeline_overlap",
    "query_overlap",
    # micro_scheduler backpressure section: latency percentiles and
    # admission-control counters under deliberate open-loop overload.
    # Lower-is-better (the gate assumes higher-is-better rates) and
    # load-timing dependent, so tracked for trend only.
    "scheduler_latency_p50_us_unbounded",
    "scheduler_latency_p99_us_unbounded",
    "scheduler_latency_p999_us_unbounded",
    "scheduler_latency_p50_us_bounded",
    "scheduler_latency_p99_us_bounded",
    "scheduler_latency_p999_us_bounded",
    "scheduler_latency_p50_us_reject",
    "scheduler_latency_p99_us_reject",
    "scheduler_latency_p999_us_reject",
    "scheduler_latency_p50_us_shed",
    "scheduler_latency_p99_us_shed",
    "scheduler_latency_p999_us_shed",
    "scheduler_queue_depth_unbounded",
    "scheduler_queue_depth_bounded",
    "scheduler_queue_depth_reject",
    "scheduler_queue_depth_shed",
    "scheduler_blocked_ms_bounded",
    "scheduler_blocked_ms_reject",
    "scheduler_blocked_ms_shed",
    "scheduler_rejected_bounded",
    "scheduler_rejected_reject",
    "scheduler_rejected_shed",
    "scheduler_shed_bounded",
    "scheduler_shed_reject",
    "scheduler_shed_shed",
    # micro_stream steady-state RSS: absolute bytes are box-dependent (page
    # cache, allocator arena, sanitizer shadow) — tracked for trend, the
    # gated flatness signal is steady_chunk_flatness.
    "steady_rss_bytes",
    # Aging retirement rate: derived from the same wall clock as
    # stream_epoch_rate (gated) but scaled by the window fraction swept.
    "stream_aged_rate",
]
DEFAULT_THRESHOLD = 0.10

# Labels that identify a series (a parameter the bench swept). Anything else
# (e.g. the informational speedup_vs_scalar annotation) is measurement
# output and would make series keys unmatchable across points.
SERIES_LABEL_KEYS = {"batch", "threads", "dataset", "load_factor", "sync",
                     "mode", "shards"}


def parse_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def series_of(point):
    """(bench, metric name, frozen labels) -> value for one trajectory point."""
    series = {}
    for bench_name, bench in point.get("benches", {}).items():
        for metric in bench.get("metrics", []):
            labels = tuple(sorted((k, v)
                                  for k, v in metric.get("labels", {}).items()
                                  if k in SERIES_LABEL_KEYS))
            series[(bench_name, metric["name"], labels)] = metric["value"]
    derive_table2_ours(point, series)
    return series


def derive_table2_ours(point, series):
    """Backfill ours_insert_rate{batch=...} from the Table II "Ours" column
    for points older than the metric series."""
    bench = point.get("benches", {}).get("table2_edge_insertion")
    if bench is None:
        return
    for table in bench.get("tables", []):
        headers = table.get("headers", [])
        if "Ours" not in headers or "Batch size" not in headers:
            continue
        ours_col = headers.index("Ours")
        batch_col = headers.index("Batch size")
        for row in table.get("rows", []):
            value = parse_number(row[ours_col])
            if value is None:
                continue
            key = ("table2_edge_insertion", "ours_insert_rate",
                   (("batch", row[batch_col]),))
            series.setdefault(key, value)
        return


def format_series(key):
    bench, name, labels = key
    label_text = ",".join(f"{k}={v}" for k, v in labels)
    return f"{bench}:{name}" + (f"{{{label_text}}}" if label_text else "")


def main(argv):
    threshold = DEFAULT_THRESHOLD
    metrics = []
    paths = []
    for arg in argv:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--metric="):
            metrics.append(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not metrics:
        metrics = DEFAULT_METRICS
    if len(paths) < 2:
        print(f"{len(paths)} trajectory point(s): nothing to compare")
        return 0

    points = []
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        if "pr" not in data:
            print(f"warning: {path} has no \"pr\" field; skipping",
                  file=sys.stderr)
            continue
        points.append((data["pr"], path, series_of(data)))
    points.sort(key=lambda p: p[0])

    regressions = []
    for (old_pr, old_path, old), (new_pr, new_path, new) in zip(
            points, points[1:]):
        for key in sorted(set(old) & set(new)):
            if key[1] not in metrics:
                continue
            old_value, new_value = old[key], new[key]
            delta = (new_value - old_value) / old_value if old_value else 0.0
            status = "OK"
            if old_value > 0 and new_value < old_value * (1.0 - threshold):
                status = "REGRESSION"
                regressions.append(
                    f"pr{old_pr} -> pr{new_pr}: {format_series(key)} "
                    f"{old_value:.2f} -> {new_value:.2f} ({delta:+.1%})")
            print(f"  [{status:10s}] pr{old_pr} -> pr{new_pr} "
                  f"{format_series(key)}: {old_value:.2f} -> {new_value:.2f} "
                  f"({delta:+.1%})")
        for key in sorted((set(old) ^ set(new))):
            if key[1] in metrics:
                where = "only in" if key in new else "missing from"
                print(f"  [skip      ] {format_series(key)} "
                      f"{where} pr{new_pr if key in new else old_pr}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno tracked metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
