// Google-benchmark micro benchmarks for the SlabHash layer and the WCWS
// ablation: map vs set ops across load factors, and Algorithm 1's
// warp-grouped insertion vs naive per-item insertion into the same tables.
//
//   ./build/micro_slabhash --json=BENCH_slabhash.json
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_main.hpp"
#include "src/core/dyn_graph.hpp"
#include "src/memory/slab_arena.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/slabhash/slab_map.hpp"
#include "src/slabhash/slab_set.hpp"
#include "src/util/prng.hpp"

namespace {

constexpr std::uint32_t kKeys = 1u << 14;

std::vector<std::uint32_t> make_keys(std::uint64_t seed) {
  sg::util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> keys(kKeys);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(1u << 28));
  return keys;
}

/// Buckets for kKeys at the load factor encoded as range(0)/100.
std::uint32_t buckets_at(const benchmark::State& state, int slot_capacity) {
  return sg::slabhash::buckets_for(kKeys, state.range(0) / 100.0, slot_capacity);
}

void BM_MapInsert(benchmark::State& state) {
  const auto keys = make_keys(1);
  for (auto _ : state) {
    state.PauseTiming();
    sg::memory::SlabArena arena;
    sg::slabhash::SlabHashMap map(
        arena, buckets_at(state, sg::slabhash::kMapPairsPerSlab));
    state.ResumeTiming();
    for (std::uint32_t k : keys) map.replace(k, k);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_MapInsert)->Arg(35)->Arg(70)->Arg(150)->Arg(300);

void BM_MapSearch(benchmark::State& state) {
  const auto keys = make_keys(2);
  sg::memory::SlabArena arena;
  sg::slabhash::SlabHashMap map(
      arena, buckets_at(state, sg::slabhash::kMapPairsPerSlab));
  for (std::uint32_t k : keys) map.replace(k, k);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (std::uint32_t k : keys) hits += map.search(k).found;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_MapSearch)->Arg(35)->Arg(70)->Arg(150)->Arg(300);

void BM_SetInsert(benchmark::State& state) {
  const auto keys = make_keys(3);
  for (auto _ : state) {
    state.PauseTiming();
    sg::memory::SlabArena arena;
    sg::slabhash::SlabHashSet set(
        arena, buckets_at(state, sg::slabhash::kSetKeysPerSlab));
    state.ResumeTiming();
    for (std::uint32_t k : keys) set.insert(k);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_SetInsert)->Arg(70)->Arg(300);

void BM_SetContains(benchmark::State& state) {
  const auto keys = make_keys(4);
  sg::memory::SlabArena arena;
  sg::slabhash::SlabHashSet set(
      arena, buckets_at(state, sg::slabhash::kSetKeysPerSlab));
  for (std::uint32_t k : keys) set.insert(k);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (std::uint32_t k : keys) hits += set.contains(k);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_SetContains)->Arg(70)->Arg(300);

/// Ablation: scalar Algorithm 1 (WCWS warp-grouped insertion) vs the staged
/// batch engine (stage -> run grouping -> bulk slab ops) vs inserting each
/// edge independently through the hash-table API.
std::vector<sg::core::WeightedEdge> insert_ablation_batch() {
  sg::util::Xoshiro256 rng(5);
  std::vector<sg::core::WeightedEdge> batch(1u << 14);
  for (auto& e : batch) {
    e = {static_cast<std::uint32_t>(rng.below(256)),
         static_cast<std::uint32_t>(rng.below(4096)), 1};
  }
  return batch;
}

void insert_bench_body(benchmark::State& state, bool batch_engine) {
  const auto batch = insert_ablation_batch();
  for (auto _ : state) {
    state.PauseTiming();
    sg::core::GraphConfig cfg;
    cfg.vertex_capacity = 4096;
    cfg.batch_engine = batch_engine;
    sg::core::DynGraphMap graph(cfg);
    state.ResumeTiming();
    graph.insert_edges(batch);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}

void BM_Alg1WarpGroupedInsert(benchmark::State& state) {
  insert_bench_body(state, /*batch_engine=*/false);
}
BENCHMARK(BM_Alg1WarpGroupedInsert);

void BM_BatchEngineInsert(benchmark::State& state) {
  insert_bench_body(state, /*batch_engine=*/true);
}
BENCHMARK(BM_BatchEngineInsert);

/// SG_THREADS sweep: the same batched insertion measured across pool
/// widths (the env default is restored afterwards). Arg(0) = one JSON
/// series per thread count via google-benchmark's per-arg records.
void BM_BatchEngineInsertThreads(benchmark::State& state) {
  sg::simt::ThreadPool::instance().resize(
      static_cast<unsigned>(state.range(0)));
  const auto batch = insert_ablation_batch();
  for (auto _ : state) {
    state.PauseTiming();
    sg::core::GraphConfig cfg;
    cfg.vertex_capacity = 4096;
    sg::core::DynGraphMap graph(cfg);
    state.ResumeTiming();
    graph.insert_edges(batch);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
  sg::simt::ThreadPool::instance().resize(0);  // back to the env default
}
BENCHMARK(BM_BatchEngineInsertThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_NaivePerItemInsert(benchmark::State& state) {
  sg::util::Xoshiro256 rng(5);
  std::vector<sg::core::WeightedEdge> batch(1u << 14);
  for (auto& e : batch) {
    e = {static_cast<std::uint32_t>(rng.below(256)),
         static_cast<std::uint32_t>(rng.below(4096)), 1};
  }
  for (auto _ : state) {
    state.PauseTiming();
    sg::memory::SlabArena arena;
    std::vector<sg::slabhash::SlabHashMap> tables;
    tables.reserve(256);
    for (int v = 0; v < 256; ++v) tables.emplace_back(arena, 1);
    state.ResumeTiming();
    for (const auto& e : batch) {
      if (e.src != e.dst) tables[e.src].replace(e.dst, e.weight);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_NaivePerItemInsert);

}  // namespace

int main(int argc, char** argv) {
  return sg::bench::run_google_benchmarks(argc, argv);
}
