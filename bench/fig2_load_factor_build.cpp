// Figure 2: effect of the load factor (average chain length) on the graph
// structure. RMAT graphs with a fixed vertex count and a sweep of average
// degrees (the paper's 15M..135M-edge series at 2^20 vertices, scaled);
// for each, bulk build at several target chain lengths c (buckets =
// ceil(d / (c * Bc))) and report:
//   (a) insertion rate  — drops as chains lengthen (paper: ~2.5x at c=5)
//   (b) memory utilization — rises (buckets are fuller)
//   (c) memory usage — falls (fewer buckets)
// An extra column reports utilization after a tombstone flush, the ablation
// for the insert-fast-vs-memory-lean tradeoff of §IV-C2.
#include "bench/bench_common.hpp"

#include "src/datasets/generators.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  const std::uint32_t vertices = ctx.quick ? 1u << 12 : 1u << 14;
  const std::vector<int> degree_multipliers =
      ctx.quick ? std::vector<int>{1, 5} : std::vector<int>{1, 3, 5, 7, 9};
  const std::vector<double> chain_lengths =
      ctx.quick ? std::vector<double>{0.7, 3.0}
                : std::vector<double>{0.5, 0.7, 1.0, 2.0, 3.0, 4.0, 5.0};
  constexpr double kBaseDegree = 14.0;  // paper: 15M edges at 2^20 vertices

  util::Table table({"Series(|E|)", "Chain", "Rate(ME/s)", "Utilization",
                     "Memory(MB)", "OverflowSlabs"});
  for (int mult : degree_multipliers) {
    const auto target_edges = static_cast<std::uint64_t>(
        vertices * kBaseDegree * static_cast<double>(mult));
    const datasets::Coo coo =
        datasets::make_rmat(vertices, target_edges, ctx.seed + mult);
    const std::string series = std::to_string(coo.num_edges() / 1000) + "K";
    for (double chain : chain_lengths) {
      core::DynGraphMap graph(bench::graph_config(coo, chain));
      util::Timer timer;
      graph.bulk_build(coo.edges);
      const double rate =
          util::mitems_per_second(double(coo.num_edges()), timer.seconds());
      const auto stats = graph.memory_stats();
      table.add_row({series, util::Table::fmt(chain, 1),
                     util::Table::fmt(rate, 1),
                     util::Table::fmt(stats.utilization(), 3),
                     util::Table::fmt(double(stats.bytes) / (1 << 20), 2),
                     util::Table::fmt_int(
                         static_cast<long long>(stats.overflow_slabs))});
    }
  }
  ctx.emit(table, "Figure 2 (a,b,c): insertion rate / memory utilization / memory "
              "usage vs average chain length (RMAT, " +
              std::to_string(vertices) + " vertices)");
  bench::paper_shape_note(
      "rate falls monotonically with chain length (paper: 2.5x drop by c=5); "
      "utilization rises toward 1; memory usage falls as buckets merge");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "fig2_load_factor_build");
  ctx.print_header("Figure 2: load factor / chain length sweep (build)");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
