// micro_persist: throughput of the durability layer (src/persist/).
//
// Three sections:
//
//   snapshot  serialize an rmat graph to the sectioned snapshot format
//             (chunked gather_neighbors + CRC + atomic rename) and restore
//             it into a fresh graph. Rates count directed edges through
//             each direction.
//
//   journal   append rate of the write-ahead batch journal: stream
//             fixed-size insert batches through a journaled graph and
//             report edges/s end-to-end (in-memory commit + journal
//             append), for both sync policies — kNone (OS-buffered) and
//             kEachBatch (fsync per batch, the durable-on-return mode).
//
//   recovery  replay rate: recover the journal written above into a fresh
//             graph (scan + CRC verify + batched re-apply) and report
//             edges/s of the replay.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   snapshot_rate{dataset}          Medges/s serialized
//   restore_rate{dataset}           Medges/s restored
//   journal_append_rate{sync}       Medges/s through insert+journal
//   recovery_replay_rate{dataset}   Medges/s re-applied from the journal
//
//   ./build/micro_persist --json=BENCH_persist.json
//   flags: --scale=<f> --seed=<n> --quick
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/datasets/generators.hpp"
#include "src/persist/journal.hpp"
#include "src/persist/recovery.hpp"
#include "src/persist/snapshot.hpp"

namespace sg {
namespace {

/// Scratch directory under the system temp root, removed at exit.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "sg_bench_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::perror("mkdtemp");
      std::exit(1);
    }
    path_ = tmpl;
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

void run_snapshot(const bench::BenchContext& ctx, const BenchDir& dir) {
  const std::uint32_t vertices = static_cast<std::uint32_t>(
      (ctx.quick ? (1u << 14) : (1u << 16)) * ctx.scale * 4);
  const datasets::Coo coo =
      datasets::make_rmat(vertices, std::uint64_t{8} * vertices, ctx.seed);
  core::DynGraphMap g(bench::graph_config(coo));
  g.bulk_build(coo.edges);

  util::Table table({"Dataset", "Edges", "Snapshot (ms)", "Write (Medges/s)",
                     "Restore (ms)", "Read (Medges/s)", "File (MiB)"});
  const std::string path = dir.file("snap");
  double write_ms = 0.0, read_ms = 0.0;
  persist::SnapshotStats stats;
  {
    util::Timer timer;
    stats = persist::snapshot(g, path);
    write_ms = timer.milliseconds();
  }
  core::DynGraphMap restored(bench::graph_config(coo));
  {
    util::Timer timer;
    persist::restore_into(restored, path);
    read_ms = timer.milliseconds();
  }
  if (restored.num_edges() != g.num_edges()) {
    std::printf("!! snapshot round-trip edge count mismatch\n");
  }
  const double edges = double(stats.directed_edges);
  const double write_rate = util::mitems_per_second(edges, write_ms * 1e-3);
  const double read_rate = util::mitems_per_second(edges, read_ms * 1e-3);
  table.add_row({coo.name,
                 util::Table::fmt_int(static_cast<long long>(stats.directed_edges)),
                 util::Table::fmt(write_ms, 2), util::Table::fmt(write_rate),
                 util::Table::fmt(read_ms, 2), util::Table::fmt(read_rate),
                 util::Table::fmt(double(stats.file_bytes) / (1 << 20), 1)});
  ctx.record("snapshot_rate", write_rate, "Medges/s", {{"dataset", coo.name}});
  ctx.record("restore_rate", read_rate, "Medges/s", {{"dataset", coo.name}});
  ctx.emit(table, "Snapshot: sectioned serialize / restore round trip");
}

void run_journal_and_recovery(const bench::BenchContext& ctx,
                              const BenchDir& dir) {
  const std::uint32_t vertices = static_cast<std::uint32_t>(
      (ctx.quick ? (1u << 13) : (1u << 15)) * ctx.scale * 4);
  const datasets::Coo coo =
      datasets::make_rmat(vertices, std::uint64_t{8} * vertices, ctx.seed);
  const std::size_t batch_edges = ctx.quick ? (1u << 12) : (1u << 14);

  util::Table append_table(
      {"Sync", "Batches", "Append (ms)", "Rate (Medges/s)", "Journal (MiB)"});
  util::Table replay_table(
      {"Dataset", "Records", "Replay (ms)", "Rate (Medges/s)"});

  const struct {
    core::JournalSyncPolicy sync;
    const char* label;
  } modes[] = {{core::JournalSyncPolicy::kNone, "none"},
               {core::JournalSyncPolicy::kEachBatch, "each-batch"}};
  for (const auto& mode : modes) {
    const std::string path = dir.file(std::string("journal_") + mode.label);
    core::GraphConfig cfg = bench::graph_config(coo);
    cfg.journal_path = path;
    cfg.journal_sync = mode.sync;
    core::DynGraphMap g(cfg);

    std::size_t batches = 0;
    double append_ms = 0.0;
    {
      util::Timer timer;
      for (std::size_t at = 0; at < coo.edges.size(); at += batch_edges) {
        const std::size_t n = std::min(batch_edges, coo.edges.size() - at);
        g.insert_edges({coo.edges.data() + at, n});
        ++batches;
      }
      append_ms = timer.milliseconds();
    }
    const double rate =
        util::mitems_per_second(double(coo.edges.size()), append_ms * 1e-3);
    const double mib =
        double(std::filesystem::file_size(path)) / double(1 << 20);
    append_table.add_row({mode.label,
                          util::Table::fmt_int(static_cast<long long>(batches)),
                          util::Table::fmt(append_ms, 2),
                          util::Table::fmt(rate), util::Table::fmt(mib, 1)});
    ctx.record("journal_append_rate", rate, "Medges/s",
               {{"sync", mode.label}});

    if (mode.sync == core::JournalSyncPolicy::kNone) {
      // Recovery replay over the journal just written (cold graph).
      core::GraphConfig rec_cfg = cfg;
      double replay_ms = 0.0;
      persist::RecoveryStats stats;
      {
        util::Timer timer;
        auto rec = persist::recover<core::MapPolicy>(rec_cfg);
        replay_ms = timer.milliseconds();
        stats = rec.stats;
        if (rec.graph->num_edges() != g.num_edges()) {
          std::printf("!! recovery edge count mismatch\n");
        }
      }
      const double replay_rate =
          util::mitems_per_second(double(coo.edges.size()), replay_ms * 1e-3);
      replay_table.add_row(
          {coo.name,
           util::Table::fmt_int(static_cast<long long>(stats.replayed_records)),
           util::Table::fmt(replay_ms, 2), util::Table::fmt(replay_rate)});
      ctx.record("recovery_replay_rate", replay_rate, "Medges/s",
                 {{"dataset", coo.name}});
    }
  }
  ctx.emit(append_table, "Journal: write-ahead append throughput by sync mode");
  ctx.emit(replay_table, "Recovery: journal replay into a cold graph");
  bench::paper_shape_note(
      "journaling rides the batch API — one record per committed batch, so "
      "the append tax is per-batch, not per-edge; replay re-applies the same "
      "batches through the bulk engine and tracks its insert rate");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "micro_persist");
  ctx.print_header("Durability: snapshot round trip, journal append, replay");
  sg::BenchDir dir;
  sg::run_snapshot(ctx, dir);
  sg::run_journal_and_recovery(ctx, dir);
  ctx.write_json();
  return 0;
}
