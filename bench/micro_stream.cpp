// micro_stream: the temporal streaming workload (src/stream/,
// docs/WORKLOADS.md "Sliding-window streaming").
//
// An rmat stream replays through stream::Harness in epochs: ingest one
// batch, age out everything older than the sliding window, run arena
// compaction on its cadence. Two sections:
//
//   epoch rate    end-to-end stream throughput by batch mode — UNSORTED
//                 (arrival order) and PRESORT (DynoGraph presorted
//                 batches) — counting stream edges through the full
//                 ingest+age+compact cycle.
//
//   steady state  memory flatness across the steady-state window: once
//                 the stream has advanced past the window, live chunks
//                 and RSS must be FLAT (within 10%), not monotonically
//                 growing — the property compaction exists to provide.
//                 The bench prints per-epoch live edges / chunks / RSS
//                 and reports max/min ratios over the steady tail.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   stream_epoch_rate{mode}       Medges/s through the full epoch cycle
//   stream_aged_rate{mode}        Medges/s retired by window aging
//   steady_chunk_flatness         min/max live arena chunks over the steady
//                                 tail — 1.0 = perfectly flat, gated like a
//                                 rate (a DROP means memory is trending)
//   steady_rss_bytes              process RSS after the last epoch
//                                 (recorded-but-ungated: absolute RSS is
//                                 box-dependent; the gated flatness signal
//                                 is steady_chunk_flatness)
//
//   ./build/micro_stream --json=BENCH_stream.json
//   flags: --scale=<f> --seed=<n> --quick
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/datasets/generators.hpp"
#include "src/stream/harness.hpp"

namespace sg {
namespace {

stream::Dataset make_stream(const bench::BenchContext& ctx,
                            std::size_t* batch_size_out) {
  const std::uint32_t vertices = static_cast<std::uint32_t>(
      (ctx.quick ? (1u << 12) : (1u << 14)) * ctx.scale * 4);
  const datasets::Coo coo =
      datasets::make_rmat(vertices, std::uint64_t{16} * vertices, ctx.seed);
  // 32 epochs: enough slides for the steady-state tail to dominate.
  const std::size_t batch_size = std::max<std::size_t>(1, coo.edges.size() / 32);
  *batch_size_out = batch_size;
  return stream::Dataset::from_coo(coo, batch_size);
}

void run_stream(const bench::BenchContext& ctx) {
  std::size_t batch_size = 0;
  const stream::Dataset dataset = make_stream(ctx, &batch_size);

  util::Table rate_table({"Mode", "Epochs", "Stream edges", "Aged", "Total (ms)",
                          "Rate (Medges/s)"});
  util::Table steady_table(
      {"Mode", "Steady epochs", "Chunks max/min", "RSS max/min",
       "Live-edge max/min"});

  const struct {
    stream::SortMode mode;
    const char* label;
  } modes[] = {{stream::SortMode::kUnsorted, "unsorted"},
               {stream::SortMode::kPresort, "presort"}};
  for (const auto& m : modes) {
    stream::HarnessConfig cfg;
    cfg.sort_mode = m.mode;
    cfg.window_frac = 0.25;
    cfg.compact_every = 4;
    cfg.graph.undirected = false;
    stream::Harness harness(dataset, cfg);

    util::Timer timer;
    const std::vector<stream::EpochStats> epochs = harness.run();
    const double total_ms = timer.milliseconds();

    std::uint64_t aged = 0;
    for (const auto& e : epochs) aged += e.aged_out;
    const double rate = util::mitems_per_second(
        double(dataset.num_edges()), total_ms * 1e-3);
    const double aged_rate =
        util::mitems_per_second(double(aged), total_ms * 1e-3);
    rate_table.add_row(
        {m.label, util::Table::fmt_int(static_cast<long long>(epochs.size())),
         util::Table::fmt_int(static_cast<long long>(dataset.num_edges())),
         util::Table::fmt_int(static_cast<long long>(aged)),
         util::Table::fmt(total_ms, 2), util::Table::fmt(rate)});
    ctx.record("stream_epoch_rate", rate, "Medges/s", {{"mode", m.label}});
    ctx.record("stream_aged_rate", aged_rate, "Medges/s", {{"mode", m.label}});

    // Steady state = the last half of the replay: the window is full and
    // sliding, so size/memory must be flat. Ratios near 1.0 = flat; the
    // acceptance bar is 1.10.
    const std::size_t tail_begin = epochs.size() / 2;
    std::uint64_t chunks_min = UINT64_MAX, chunks_max = 0;
    std::uint64_t rss_min = UINT64_MAX, rss_max = 0;
    std::uint64_t live_min = UINT64_MAX, live_max = 0;
    for (std::size_t i = tail_begin; i < epochs.size(); ++i) {
      chunks_min = std::min(chunks_min, epochs[i].arena_chunks);
      chunks_max = std::max(chunks_max, epochs[i].arena_chunks);
      rss_min = std::min(rss_min, epochs[i].rss_bytes);
      rss_max = std::max(rss_max, epochs[i].rss_bytes);
      live_min = std::min(live_min, epochs[i].live_edges);
      live_max = std::max(live_max, epochs[i].live_edges);
    }
    const auto ratio = [](std::uint64_t max, std::uint64_t min) {
      return min == 0 ? 0.0 : double(max) / double(min);
    };
    steady_table.add_row(
        {m.label,
         util::Table::fmt_int(static_cast<long long>(epochs.size() - tail_begin)),
         util::Table::fmt(ratio(chunks_max, chunks_min), 3),
         util::Table::fmt(ratio(rss_max, rss_min), 3),
         util::Table::fmt(ratio(live_max, live_min), 3)});
    if (m.mode == stream::SortMode::kPresort) {
      // Inverted (min/max) so higher-is-better matches the gate's
      // direction: 1.0 = flat, sliding toward 0 = memory trending up.
      ctx.record("steady_chunk_flatness",
                 chunks_max == 0 ? 0.0 : double(chunks_min) / double(chunks_max),
                 "ratio");
      ctx.record("steady_rss_bytes", double(epochs.back().rss_bytes), "bytes");
    }
  }
  ctx.emit(rate_table, "Stream: epoch replay throughput by batch mode");
  ctx.emit(steady_table,
           "Steady state: memory flatness across the sliding window");
  bench::paper_shape_note(
      "sliding-window aging rides the bulk-erase engine and compaction "
      "returns emptied chunks, so the steady-state chunk count follows the "
      "live window (ratios ~1), not the high-water mark");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "micro_stream");
  ctx.print_header("Temporal stream: sliding-window aging + compaction");
  sg::run_stream(ctx);
  ctx.write_json();
  return 0;
}
