// micro_query_pipeline: phase-concurrent query pipelining, merge-free
// staging, and the automatic rehash policy.
//
// Three sections:
//
//   overlap   builds a graph once, then streams edges_exist / edge_weights
//             batches through the engine at several pool widths, once with
//             the double buffer off (stage-then-search) and once on
//             (stage of query slice N+1 overlaps the bulk searches of
//             slice N), reporting query throughput, the measured
//             stage/search overlap window, and the fraction of staging
//             hidden behind the searches. At >= 2 threads the overlap must
//             be > 0; at 1 thread the pipeline degenerates and the two
//             configurations should tie.
//
//   merge     streams the same insert batches through merge-free staging
//             and the legacy copying merge, reporting throughput and the
//             driver-copied bytes each assembly performed (merge-free must
//             report 0).
//
//   rehash    streams a hub-skewed insert/query mix with the p99 auto-
//             rehash policy on vs off, reporting trigger count, final mean
//             chain length, and the query rate on the maintained graph.
//
// JSON metrics (tracked by bench/compare_bench.py):
//   query_rate{threads=T}        MQuery/s through the pipelined engine
//   query_overlap{threads=T}     overlap seconds / stage seconds
//   merge_free_insert_rate       MEdge/s with zero-copy staging
//   auto_rehash_triggers         policy firings on the skewed stream
//
//   ./build/micro_query_pipeline --json=BENCH_query.json
//   flags: --batches=N --batch_exp=E --vertices_exp=E --threads=1,2,4 --quick
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/simt/thread_pool.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

std::vector<core::WeightedEdge> random_edges(std::uint64_t seed,
                                             std::size_t count,
                                             std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::WeightedEdge> batch(count);
  for (auto& e : batch) {
    e = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::Weight>(rng.below(1u << 16))};
  }
  return batch;
}

/// Query batch with ~50% hit rate: half the probes redraw the insert
/// distribution, half land outside it.
std::vector<core::Edge> query_probes(std::uint64_t seed, std::size_t count,
                                     std::uint32_t num_vertices) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Edge> queries(count);
  for (auto& q : queries) {
    q = {static_cast<core::VertexId>(rng.below(num_vertices)),
         static_cast<core::VertexId>(rng.below(num_vertices * 2))};
  }
  return queries;
}

std::vector<unsigned> parse_thread_list(const util::Cli& cli) {
  std::vector<unsigned> threads;
  const std::string raw = cli.get("threads", "1,2,4");
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok =
        raw.substr(pos, comma == std::string::npos ? raw.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) {
      const long n = std::strtol(tok.c_str(), nullptr, 10);
      if (n > 0) threads.push_back(static_cast<unsigned>(n));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return threads;
}

struct QueryRun {
  double mqueries_per_s = 0.0;
  core::BatchPipelineStats stats;  // summed over batches
};

QueryRun stream_queries(const core::DynGraphMap& g,
                        const std::vector<std::vector<core::Edge>>& batches,
                        bool weighted) {
  QueryRun run;
  std::uint64_t total = 0;
  std::vector<std::uint8_t> found;
  std::vector<core::Weight> weights;
  util::Timer timer;
  for (const auto& batch : batches) {
    found.assign(batch.size(), 0);
    if (weighted) {
      weights.assign(batch.size(), 0);
      g.edge_weights(batch, weights.data(), found.data());
    } else {
      g.edges_exist(batch, found.data());
    }
    const core::BatchPipelineStats s = g.last_query_stats();
    run.stats.epochs += s.epochs;
    run.stats.shards = s.shards;
    run.stats.stage_seconds += s.stage_seconds;
    run.stats.apply_seconds += s.apply_seconds;
    run.stats.overlap_seconds += s.overlap_seconds;
    run.stats.merge_copy_bytes += s.merge_copy_bytes;
    total += batch.size();
  }
  run.mqueries_per_s =
      util::mitems_per_second(double(total), timer.seconds());
  return run;
}

void run_overlap(const bench::BenchContext& ctx,
                 const std::vector<unsigned>& threads, int vertices_exp,
                 int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  const auto edges =
      random_edges(ctx.seed, batch_size * 2, num_vertices);
  std::vector<std::vector<core::Edge>> batches;
  for (int b = 0; b < num_batches; ++b) {
    batches.push_back(
        query_probes(ctx.seed + 100 + b, batch_size, num_vertices));
  }

  util::Table table({"Threads", "Mode", "Single-buf (MQuery/s)",
                     "Pipelined (MQuery/s)", "Stage (ms)", "Search (ms)",
                     "Overlap (ms)", "Overlap frac"});
  for (const unsigned t : threads) {
    simt::ThreadPool::instance().resize(t);
    for (const bool weighted : {false, true}) {
      // Pin four query slices per batch so the quick grid pipelines too.
      core::GraphConfig cfg;
      cfg.vertex_capacity = num_vertices;
      cfg.pipeline_epoch_edges =
          static_cast<std::uint32_t>(batch_size / 4);
      cfg.double_buffer = false;
      core::DynGraphMap single(cfg);
      single.insert_edges(edges);
      cfg.double_buffer = true;
      core::DynGraphMap piped(cfg);
      piped.insert_edges(edges);

      const QueryRun sb = stream_queries(single, batches, weighted);
      const QueryRun pp = stream_queries(piped, batches, weighted);
      const double overlap_frac =
          pp.stats.stage_seconds > 0.0
              ? pp.stats.overlap_seconds / pp.stats.stage_seconds
              : 0.0;
      const char* mode = weighted ? "edge_weights" : "edges_exist";
      table.add_row({std::to_string(t), mode,
                     util::Table::fmt(sb.mqueries_per_s),
                     util::Table::fmt(pp.mqueries_per_s),
                     util::Table::fmt(pp.stats.stage_seconds * 1e3),
                     util::Table::fmt(pp.stats.apply_seconds * 1e3),
                     util::Table::fmt(pp.stats.overlap_seconds * 1e3),
                     util::Table::fmt(overlap_frac)});
      if (!weighted) {
        ctx.record("query_rate", pp.mqueries_per_s, "MQuery/s",
                   {{"threads", std::to_string(t)},
                    {"batch", "2^" + std::to_string(batch_exp)}});
        ctx.record("query_overlap", overlap_frac, "fraction",
                   {{"threads", std::to_string(t)},
                    {"batch", "2^" + std::to_string(batch_exp)}});
      }
    }
  }
  simt::ThreadPool::instance().resize(0);
  ctx.emit(table, "Query stage/search overlap: " +
                      std::to_string(num_batches) + " batches of 2^" +
                      std::to_string(batch_exp) + " probes, V = 2^" +
                      std::to_string(vertices_exp));
  bench::paper_shape_note(
      "query_overlap > 0 at >= 2 threads (staging of slice N+1 hides "
      "behind the bulk searches of slice N); the 1-thread pipeline "
      "degenerates and matches the single-buffer path");
}

void run_merge(const bench::BenchContext& ctx, int vertices_exp,
               int batch_exp, int num_batches) {
  const std::uint32_t num_vertices = 1u << vertices_exp;
  const std::size_t batch_size = std::size_t{1} << batch_exp;
  std::vector<std::vector<core::WeightedEdge>> batches;
  for (int b = 0; b < num_batches; ++b) {
    batches.push_back(
        random_edges(ctx.seed + b, batch_size, num_vertices));
  }
  // Fixed shard count + epoch size: the copy volume being measured must
  // not depend on the ambient pool width.
  util::Table table({"Staging", "MEdge/s", "Driver copy (KiB)"});
  double merge_free_rate = 0.0;
  for (const bool merge_free : {false, true}) {
    core::GraphConfig cfg;
    cfg.vertex_capacity = num_vertices;
    cfg.stage_shards = 4;
    cfg.pipeline_epoch_edges = static_cast<std::uint32_t>(batch_size / 4);
    cfg.merge_free = merge_free;
    core::DynGraphMap g(cfg);
    std::uint64_t copied = 0;
    std::uint64_t total = 0;
    util::Timer timer;
    for (const auto& batch : batches) {
      g.insert_edges(batch);
      copied += g.last_batch_stats().merge_copy_bytes;
      total += batch.size();
    }
    const double rate = util::mitems_per_second(double(total), timer.seconds());
    if (merge_free) merge_free_rate = rate;
    table.add_row({merge_free ? "merge-free (two-pass)" : "copying merge",
                   util::Table::fmt(rate),
                   util::Table::fmt(double(copied) / 1024.0)});
  }
  ctx.emit(table, "Merge-free staging vs copying merge: " +
                      std::to_string(num_batches) + " batches of 2^" +
                      std::to_string(batch_exp) + " edges, 4 shards");
  ctx.record("merge_free_insert_rate", merge_free_rate, "MEdge/s",
             {{"batch", "2^" + std::to_string(batch_exp)}});
  bench::paper_shape_note(
      "merge-free staging reports zero driver-copied bytes: shards emit "
      "directly into presized global slices");
}

void run_auto_rehash(const bench::BenchContext& ctx, int tail_exp,
                     int hub_degree) {
  // Hub-skewed stream: hubs chain heavily while 2^tail_exp vertices stay
  // single-slab. Hubs scale with the tail (1/64th) so the long-run tail
  // fraction sits at ~1.5% — past the policy's 1% trigger at every grid
  // size — and interleaved query batches keep the histogram warm.
  const std::uint32_t tails = 1u << tail_exp;
  const std::uint32_t hubs = tails / 64;
  std::vector<core::WeightedEdge> edges;
  for (core::VertexId hub = 0; hub < hubs; ++hub) {
    for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(hub_degree);
         ++k) {
      edges.push_back({hub, tails + k, k});
    }
  }
  for (core::VertexId u = hubs; u < tails; ++u) {
    edges.push_back({u, u + 1, 1});
  }
  std::vector<core::Edge> probes;
  for (core::VertexId hub = 0; hub < hubs; ++hub) {
    for (std::uint32_t k = 0; k < 64; ++k) probes.push_back({hub, tails + k});
  }

  util::Table table({"Policy", "Triggers", "Mean chain (slabs)",
                     "Query (MQuery/s)"});
  std::uint64_t triggers = 0;
  for (const bool auto_rehash : {false, true}) {
    core::GraphConfig cfg;
    cfg.vertex_capacity = tails + static_cast<std::uint32_t>(hub_degree) + 1;
    cfg.stage_shards = 2;  // deterministic run counts across pool widths
    cfg.auto_rehash_p99_slabs = auto_rehash ? 3.0 : 0.0;
    core::DynGraphMap g(cfg);
    g.insert_edges(edges);
    std::vector<std::uint8_t> found(probes.size());
    util::Timer timer;
    for (int rep = 0; rep < 20; ++rep) g.edges_exist(probes, found.data());
    const double rate = util::mitems_per_second(
        double(probes.size()) * 20.0, timer.seconds());
    if (auto_rehash) triggers = g.auto_rehash_triggers();
    table.add_row({auto_rehash ? "p99 auto (3 slabs)" : "off",
                   std::to_string(g.auto_rehash_triggers()),
                   util::Table::fmt(g.memory_stats().avg_chain_length()),
                   util::Table::fmt(rate)});
  }
  ctx.emit(table, "Auto-rehash policy on a hub-skewed stream: " +
                      std::to_string(tails) + " vertices, " +
                      std::to_string(hubs) + " hubs of degree " +
                      std::to_string(hub_degree));
  ctx.record("auto_rehash_triggers", double(triggers), "count", {});
  bench::paper_shape_note(
      "the p99 policy fires during the skewed inserts without user calls, "
      "flattening the hub chains the query phase then walks");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx =
      sg::bench::BenchContext::from_cli(cli, 1.0, "micro_query_pipeline");
  ctx.print_header(
      "Query pipeline: stage/search overlap + merge-free staging + "
      "auto-rehash");
  const int vertices_exp = cli.get_int("vertices_exp", ctx.quick ? 15 : 17);
  const int batch_exp = cli.get_int("batch_exp", ctx.quick ? 14 : 16);
  const int num_batches = cli.get_int("batches", ctx.quick ? 4 : 8);
  sg::run_overlap(ctx, sg::parse_thread_list(cli), vertices_exp, batch_exp,
                  num_batches);
  sg::run_merge(ctx, vertices_exp, batch_exp, num_batches);
  sg::run_auto_rehash(ctx, ctx.quick ? 12 : 14, ctx.quick ? 400 : 1000);
  ctx.write_json();
  return 0;
}
