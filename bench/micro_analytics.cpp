// micro_analytics: throughput of the bulk-engine analytics paths.
//
// Three sections:
//
//   bfs       scalar advance (per-vertex neighbor callbacks) vs bulk waves
//             (advance_bulk: ONE gather_neighbors pass per frontier) on an
//             rmat graph. Rate counts directed edges traversed over the
//             whole traversal.
//
//   tc        static triangle counting on the set variant: edgeExist
//             probing (tc_slabgraph) vs the bulk gather + slice-sort +
//             sorted-intersect path (tc_slabgraph_bulk).
//
//   delta     the dynamic-TC delta pipeline: preload an rmat graph, then
//             stream fixed-size batches through the fenced
//             exist → insert → analytics epoch and report edges/s of the
//             whole epoch. Run at several GRAPH sizes with the SAME batch
//             size: the rate holds roughly flat as the graph grows — the
//             per-epoch cost follows the batch, not the graph (the claim
//             the incremental regime rests on).
//
// JSON metrics (tracked by bench/compare_bench.py):
//   bfs_rate{dataset}              Medges/s, bulk path
//   static_tc_rate{dataset}        Medges/s, bulk path
//   dynamic_tc_delta_rate{dataset} Medges/s through the fenced epoch
//
//   ./build/micro_analytics --json=BENCH_analytics.json
//   flags: --scale=<f> --seed=<n> --quick
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/analytics/bfs.hpp"
#include "src/analytics/incremental_tc.hpp"
#include "src/analytics/triangle_count.hpp"
#include "src/datasets/generators.hpp"
#include "src/util/prng.hpp"

namespace sg {
namespace {

analytics::NeighborFn slab_neighbors(const core::DynGraphSet& g) {
  return [&g](core::VertexId u, const std::function<void(core::VertexId)>& visit) {
    g.for_each_neighbor(u, [&](core::VertexId v, core::Weight) { visit(v); });
  };
}

void run_bfs(const bench::BenchContext& ctx) {
  const std::uint32_t vertices =
      static_cast<std::uint32_t>((ctx.quick ? (1u << 14) : (1u << 16)) *
                                 ctx.scale * 4);
  const datasets::Coo coo =
      datasets::make_rmat(vertices, std::uint64_t{8} * vertices, ctx.seed);
  core::DynGraphSet g(bench::graph_config(coo));
  g.bulk_build(coo.edges);

  util::Table table({"Dataset", "Scalar (ms)", "Bulk (ms)", "Bulk (Medges/s)"});
  double scalar_ms = 0.0, bulk_ms = 0.0;
  {
    util::Timer timer;
    const auto dist = analytics::bfs(coo.num_vertices, slab_neighbors(g), 0);
    scalar_ms = timer.milliseconds();
    (void)dist;
  }
  double rate = 0.0;
  {
    util::Timer timer;
    const auto dist =
        analytics::bfs_bulk(coo.num_vertices, analytics::bulk_neighbors(g), 0);
    bulk_ms = timer.milliseconds();
    rate = util::mitems_per_second(double(coo.num_edges()), bulk_ms * 1e-3);
    (void)dist;
  }
  table.add_row({coo.name, util::Table::fmt(scalar_ms, 2),
                 util::Table::fmt(bulk_ms, 2), util::Table::fmt(rate)});
  ctx.record("bfs_rate", rate, "Medges/s", {{"dataset", coo.name}});
  ctx.emit(table, "BFS: scalar advance vs bulk waves");
}

void run_static_tc(const bench::BenchContext& ctx) {
  const std::uint32_t vertices = static_cast<std::uint32_t>(
      (ctx.quick ? (1u << 12) : (1u << 14)) * ctx.scale * 4);
  const datasets::Coo coo =
      datasets::make_rmat(vertices, std::uint64_t{16} * vertices, ctx.seed);
  core::DynGraphSet g(bench::graph_config(coo));
  g.bulk_build(coo.edges);

  util::Table table(
      {"Dataset", "Probing (ms)", "Bulk (ms)", "Bulk (Medges/s)", "Triangles"});
  double probe_ms = 0.0, bulk_ms = 0.0, rate = 0.0;
  std::uint64_t triangles = 0;
  {
    util::Timer timer;
    triangles = analytics::tc_slabgraph(g);
    probe_ms = timer.milliseconds();
  }
  {
    util::Timer timer;
    const std::uint64_t t = analytics::tc_slabgraph_bulk(g);
    bulk_ms = timer.milliseconds();
    rate = util::mitems_per_second(double(coo.num_edges()), bulk_ms * 1e-3);
    if (t != triangles) std::printf("!! bulk TC mismatch\n");
  }
  table.add_row({coo.name, util::Table::fmt(probe_ms, 2),
                 util::Table::fmt(bulk_ms, 2), util::Table::fmt(rate),
                 util::Table::fmt_int(static_cast<long long>(triangles))});
  ctx.record("static_tc_rate", rate, "Medges/s", {{"dataset", coo.name}});
  ctx.emit(table, "Static TC: edgeExist probing vs bulk gather+intersect");
}

void run_delta(const bench::BenchContext& ctx) {
  // SAME batch size at growing graph sizes: a flat rate is the scaling
  // claim (epoch cost ∝ batch, not graph).
  const std::size_t batch_edges = ctx.quick ? (1u << 12) : (1u << 14);
  const int exps[] = {14, 15, 16};
  util::Table table({"Graph", "Unique edges", "Batch", "Epoch (ms)",
                     "Rate (Medges/s)", "Triangles"});
  for (const int exp : exps) {
    const std::uint32_t vertices =
        static_cast<std::uint32_t>((1u << exp) * ctx.scale * 4);
    const datasets::Coo coo =
        datasets::make_rmat(vertices, std::uint64_t{8} * vertices, ctx.seed);
    std::vector<core::WeightedEdge> unique = coo.unique_undirected_edges();
    util::Xoshiro256 rng(ctx.seed ^ 0xD15EA5EULL);
    for (std::size_t i = unique.size(); i > 1; --i) {
      std::swap(unique[i - 1], unique[rng.below(i)]);
    }
    if (unique.size() <= batch_edges) continue;

    core::GraphConfig cfg;
    cfg.vertex_capacity = coo.num_vertices;
    cfg.undirected = true;
    core::DynGraphSet g(cfg);
    // Preload everything but the last `batch_edges` edges synchronously.
    const std::size_t preload = unique.size() - batch_edges;
    g.insert_edges({unique.data(), preload});
    g.rehash_long_chains(1.0);

    analytics::IncrementalTriangleCounter counter(g);
    std::vector<core::Edge> batch;
    batch.reserve(batch_edges);
    for (std::size_t i = preload; i < unique.size(); ++i) {
      batch.push_back({unique[i].src, unique[i].dst});
    }
    util::Timer timer;
    const std::uint64_t total = counter.submit_batch(batch).get();
    const double epoch_ms = timer.milliseconds();
    g.schedule_drain();
    const double rate =
        util::mitems_per_second(double(batch.size()), epoch_ms * 1e-3);
    const std::string label = "rmat_2^" + std::to_string(exp);
    table.add_row({label, util::Table::fmt_int(
                              static_cast<long long>(unique.size())),
                   util::Table::fmt_int(static_cast<long long>(batch.size())),
                   util::Table::fmt(epoch_ms, 2), util::Table::fmt(rate),
                   util::Table::fmt_int(static_cast<long long>(total))});
    ctx.record("dynamic_tc_delta_rate", rate, "Medges/s",
               {{"dataset", label}});
  }
  ctx.emit(table,
           "Dynamic TC delta epochs: fixed batch, growing graph (flat rate "
           "= cost follows the batch)");
  bench::paper_shape_note(
      "bulk waves gather a whole frontier per pass and the delta epoch "
      "touches only the batch endpoints' adjacency — its rate stays roughly "
      "flat as the preloaded graph grows 4x");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx =
      sg::bench::BenchContext::from_cli(cli, 0.25, "micro_analytics");
  ctx.print_header("Bulk-engine analytics: BFS waves, bulk TC, delta epochs");
  sg::run_bfs(ctx);
  sg::run_static_tc(ctx);
  sg::run_delta(ctx);
  ctx.write_json();
  return 0;
}
