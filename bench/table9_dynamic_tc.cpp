// Table IX: dynamic triangle counting over the road_usa and hollywood-2009
// analogs — three regimes on the same shuffled unique-edge stream:
//
//   incremental  the delta pipeline (exist → insert → analytics epochs);
//                each batch pays only for the triangles it closes.
//   recount      the paper's original regime: insert + full probing
//                recount every batch — the scalar-adjacency baseline the
//                delta pipeline gates ≥2x against.
//   hornet       insert + re-sort + intersect TC ("the overhead of
//                maintaining a sorted Hornet").
//
// The paper's shape (ours-recount vs Hornet): ours wins on the road-like
// graph (1.8x, insertion-dominated), Hornet wins slightly (0.9x) on
// hollywood where its faster TC covers the sorted-list upkeep. The delta
// pipeline then beats BOTH by skipping the recount entirely.
#include "bench/bench_common.hpp"

#include "src/analytics/dynamic_triangle_count.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  for (const std::string name : {"road_usa", "hollywood-2009"}) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    const int iterations = ctx.quick ? 3 : 5;
    // Small bounded batches against the preloaded half-graph: the
    // streaming regime (batch << graph) the delta pipeline targets.
    const std::size_t cap = 1ull << 13;  // unique undirected edges per batch
    const auto result = analytics::run_dynamic_tc(coo, iterations, cap);
    util::Table table({"Iter", "Incr Total", "Recount Insert", "Recount TC",
                       "Recount Total", "Hornet Total", "Vs-recount",
                       "Vs-hornet", "Triangles"});
    for (std::size_t i = 0; i < result.ours.size(); ++i) {
      const auto& o = result.ours[i];
      const auto& r = result.recount[i];
      const auto& h = result.hornet[i];
      if (o.triangles != r.triangles || o.triangles != h.triangles) {
        std::printf("!! dynamic TC mismatch on %s iter %d\n", name.c_str(),
                    o.iteration);
      }
      table.add_row({util::Table::fmt_int(o.iteration),
                     util::Table::fmt(o.cumulative_ms, 1),
                     util::Table::fmt(r.insert_ms, 1),
                     util::Table::fmt(r.tc_ms, 1),
                     util::Table::fmt(r.cumulative_ms, 1),
                     util::Table::fmt(h.cumulative_ms, 1),
                     util::Table::fmt(r.cumulative_ms / o.cumulative_ms, 2) +
                         "x",
                     util::Table::fmt(h.cumulative_ms / o.cumulative_ms, 2) +
                         "x",
                     util::Table::fmt_int(
                         static_cast<long long>(o.triangles))});
    }
    ctx.emit(table, "Table IX: cumulative dynamic TC on " + name +
                " (half-graph preload, batch cap 2^13 unique edges, ms)");
    if (!result.ours.empty()) {
      const double incr = result.ours.back().cumulative_ms;
      const double rec = result.recount.back().cumulative_ms;
      ctx.record("dynamic_tc_incr_speedup", incr > 0.0 ? rec / incr : 0.0,
                 "x", {{"dataset", name}});
    }
    std::printf("\n");
  }
  bench::paper_shape_note(
      "recount vs hornet keeps the paper's shape (road-like: ours ahead "
      "~1.8x, insertion-dominated; hollywood-like: Hornet competitive "
      "~0.9x); the incremental pipeline beats the recount on BOTH because "
      "a batch's delta pass touches only the batch endpoints' adjacency");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "table9_dynamic_tc");
  ctx.print_header("Table IX: dynamic triangle counting");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
