// Table IX: dynamic triangle counting — five insert+recount iterations over
// the road_usa and hollywood-2009 analogs, ours (probing TC, no sort ever)
// vs Hornet (insert + re-sort + intersect TC). The paper's shape: ours wins
// on the road-like graph (1.8x, insertion-dominated), Hornet wins slightly
// (0.9x) on hollywood where its faster TC covers the sorted-list upkeep.
#include "bench/bench_common.hpp"

#include "src/analytics/dynamic_triangle_count.hpp"

namespace sg {
namespace {

void run(const bench::BenchContext& ctx) {
  for (const std::string name : {"road_usa", "hollywood-2009"}) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    const int iterations = ctx.quick ? 3 : 5;
    const std::size_t cap = 1ull << 18;
    const auto result = analytics::run_dynamic_tc(coo, iterations, cap);
    util::Table table({"Iter", "Ours Insert", "Ours TC", "Ours Total",
                       "Hornet Insert", "Hornet TC", "Hornet Total",
                       "Speedup"});
    for (std::size_t i = 0; i < result.ours.size(); ++i) {
      const auto& o = result.ours[i];
      const auto& h = result.hornet[i];
      table.add_row({util::Table::fmt_int(o.iteration),
                     util::Table::fmt(o.insert_ms, 1),
                     util::Table::fmt(o.tc_ms, 1),
                     util::Table::fmt(o.cumulative_ms, 1),
                     util::Table::fmt(h.insert_ms, 1),
                     util::Table::fmt(h.tc_ms, 1),
                     util::Table::fmt(h.cumulative_ms, 1),
                     util::Table::fmt(h.cumulative_ms / o.cumulative_ms, 2) +
                         "x"});
    }
    ctx.emit(table, "Table IX: cumulative dynamic TC on " + name +
                " (batch cap 2^18, times in ms)");
    std::printf("\n");
  }
  bench::paper_shape_note(
      "road-like: ours ahead (~1.8x in the paper) because insertion "
      "dominates; hollywood-like: Hornet competitive/ahead (~0.9x) because "
      "sorted-intersect TC outweighs its slower insertion");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 0.25, "table9_dynamic_tc");
  ctx.print_header("Table IX: dynamic triangle counting");
  sg::run(ctx);
  ctx.write_json();
  return 0;
}
