// Table VI: incremental build — start empty, insert the dataset in batches
// with vertex capacity known but degrees unknown (every hash table gets a
// single bucket: the worst case for us, §VI-B2). Mean MEdge/s over the four
// similar-|E| datasets (ldoor, delaunay_n23, road_usa, soc-LiveJournal1),
// Hornet vs ours, plus the paper's low-variance/high-variance split.
#include "bench/bench_common.hpp"

#include "src/baselines/hornet/hornet_graph.hpp"
#include "src/datasets/coo.hpp"

namespace sg {
namespace {

double incremental_ours(const datasets::Coo& coo, std::size_t batch_size) {
  core::DynGraphMap graph(bench::graph_config(coo));
  graph.reserve_vertices(coo.num_vertices);  // capacity known a priori
  util::Timer timer;
  for (const auto batch : datasets::split_batches(coo.edges, batch_size)) {
    graph.insert_edges(batch);
  }
  return util::mitems_per_second(double(coo.num_edges()), timer.seconds());
}

double incremental_hornet(const datasets::Coo& coo, std::size_t batch_size) {
  baselines::hornet::HornetGraph graph(coo.num_vertices);
  util::Timer timer;
  for (const auto batch : datasets::split_batches(coo.edges, batch_size)) {
    graph.insert_edges(batch);
  }
  return util::mitems_per_second(double(coo.num_edges()), timer.seconds());
}

void run(const bench::BenchContext& ctx, const std::vector<int>& batch_exps) {
  const auto names = datasets::incremental_suite_names();
  util::Table table({"Batch size", "Hornet", "Ours", "Speedup"});
  std::vector<std::pair<std::vector<double>, std::vector<double>>> per_exp(
      batch_exps.size());
  // Per-dataset speedups at the largest batch, for the variance split note.
  util::Table split({"Dataset", "Hornet", "Ours", "Speedup"});
  for (const auto& name : names) {
    const datasets::Coo coo = datasets::make_dataset(name, ctx.scale, ctx.seed);
    for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
      const std::size_t batch_size = 1ull << batch_exps[bi];
      const double h = incremental_hornet(coo, batch_size);
      const double o = incremental_ours(coo, batch_size);
      per_exp[bi].first.push_back(h);
      per_exp[bi].second.push_back(o);
      if (bi + 1 == batch_exps.size()) {
        split.add_row({name, util::Table::fmt(h), util::Table::fmt(o),
                       util::Table::fmt(o / h, 2) + "x"});
      }
    }
  }
  for (std::size_t bi = 0; bi < batch_exps.size(); ++bi) {
    const double h = util::mean_of(per_exp[bi].first);
    const double o = util::mean_of(per_exp[bi].second);
    table.add_row({"2^" + std::to_string(batch_exps[bi]), util::Table::fmt(h),
                   util::Table::fmt(o), util::Table::fmt(o / h, 2) + "x"});
  }
  ctx.emit(table, 
      "Table VI: incremental build mean edge insertion rates (MEdge/s)");
  std::printf("\n");
  ctx.emit(split, "Per-dataset split at the largest batch (variance effect)");
  bench::paper_shape_note(
      "ours ~5x faster on average; the gap is largest on low-variance "
      "graphs (delaunay/road: paper 15-25x) where Hornet keeps copying "
      "blocks, and smallest/reversed on high-variance soc-LiveJournal1 "
      "(paper 0.92x)");
}

}  // namespace
}  // namespace sg

int main(int argc, char** argv) {
  const sg::util::Cli cli(argc, argv);
  const auto ctx = sg::bench::BenchContext::from_cli(cli, 1.0, "table6_incremental_build");
  ctx.print_header("Table VI: incremental build (unknown degrees, 1 bucket)");
  const std::vector<int> exps =
      ctx.quick ? std::vector<int>{14} : std::vector<int>{15, 16, 17};
  sg::run(ctx, exps);
  ctx.write_json();
  return 0;
}
